package ann

// Frozen reference implementation of the MLP trainer, kept verbatim from
// before the batched fast path (per-sample forward/backward with o-outer
// strided weight access, per-call activation allocation in Predict) with
// ref* renames. The equivalence tests demand byte-identical weights and
// predictions across seeds and configurations: the loop interchange and
// the batched schedule feed every float accumulator the same addends in
// the same order, so the fast path is a pure memory-layout change. Same
// pattern as internal/place/equiv_test.go.

import (
	"math"
	"math/rand"
	"testing"
)

type refANN struct {
	Hidden          []int
	Epochs          int
	BatchSize       int
	LR              float64
	L2              float64
	Seed            int64
	HuberDelta      float64
	NormalizeTarget bool

	weights [][]float64
	dims    []int
	yMean   float64
	yStd    float64
}

func (m *refANN) fit(X [][]float64, y []float64) error {
	n := len(X)
	if m.Epochs <= 0 {
		m.Epochs = 60
	}
	if m.BatchSize <= 0 {
		m.BatchSize = 32
	}
	if m.LR <= 0 {
		m.LR = 1e-3
	}
	in := len(X[0])
	m.dims = append([]int{in}, m.Hidden...)
	m.dims = append(m.dims, 1)
	rng := rand.New(rand.NewSource(m.Seed))

	m.yMean, m.yStd = 0, 1
	if m.NormalizeTarget {
		for _, v := range y {
			m.yMean += v
		}
		m.yMean /= float64(n)
		va := 0.0
		for _, v := range y {
			va += (v - m.yMean) * (v - m.yMean)
		}
		m.yStd = math.Sqrt(va / float64(n))
		if m.yStd < 1e-12 {
			m.yStd = 1
		}
		scaled := make([]float64, n)
		for i, v := range y {
			scaled[i] = (v - m.yMean) / m.yStd
		}
		y = scaled
	}

	layers := len(m.dims) - 1
	m.weights = make([][]float64, layers)
	for l := 0; l < layers; l++ {
		fanIn, fanOut := m.dims[l], m.dims[l+1]
		w := make([]float64, (fanIn+1)*fanOut)
		scale := math.Sqrt(2.0 / float64(fanIn))
		for i := 0; i < fanIn*fanOut; i++ {
			w[i] = rng.NormFloat64() * scale
		}
		m.weights[l] = w
	}

	mom := make([][]float64, layers)
	vel := make([][]float64, layers)
	grad := make([][]float64, layers)
	for l := range m.weights {
		mom[l] = make([]float64, len(m.weights[l]))
		vel[l] = make([]float64, len(m.weights[l]))
		grad[l] = make([]float64, len(m.weights[l]))
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0

	acts := make([][]float64, layers+1)
	deltas := make([][]float64, layers+1)
	for l, d := range m.dims {
		acts[l] = make([]float64, d)
		deltas[l] = make([]float64, d)
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += m.BatchSize {
			end := start + m.BatchSize
			if end > n {
				end = n
			}
			for l := range grad {
				for i := range grad[l] {
					grad[l][i] = 0
				}
			}
			for _, idx := range order[start:end] {
				m.forward(X[idx], acts)
				r := acts[layers][0] - y[idx]
				if m.HuberDelta > 0 {
					if r > m.HuberDelta {
						r = m.HuberDelta
					} else if r < -m.HuberDelta {
						r = -m.HuberDelta
					}
				}
				deltas[layers][0] = r
				m.backward(acts, deltas, grad)
			}
			bs := float64(end - start)
			step++
			lr := m.LR * math.Sqrt(1-math.Pow(beta2, float64(step))) / (1 - math.Pow(beta1, float64(step)))
			for l := range m.weights {
				w := m.weights[l]
				for i := range w {
					g := grad[l][i]/bs + m.L2*w[i]
					mom[l][i] = beta1*mom[l][i] + (1-beta1)*g
					vel[l][i] = beta2*vel[l][i] + (1-beta2)*g*g
					w[i] -= lr * mom[l][i] / (math.Sqrt(vel[l][i]) + eps)
				}
			}
		}
	}
	return nil
}

func (m *refANN) forward(x []float64, acts [][]float64) {
	copy(acts[0], x)
	layers := len(m.weights)
	for l := 0; l < layers; l++ {
		fanIn, fanOut := m.dims[l], m.dims[l+1]
		w := m.weights[l]
		out := acts[l+1]
		for o := 0; o < fanOut; o++ {
			s := w[fanIn*fanOut+o]
			for i := 0; i < fanIn; i++ {
				s += acts[l][i] * w[i*fanOut+o]
			}
			if l < layers-1 && s < 0 {
				s = 0
			}
			out[o] = s
		}
	}
}

func (m *refANN) backward(acts, deltas, grad [][]float64) {
	layers := len(m.weights)
	for l := layers - 1; l >= 0; l-- {
		fanIn, fanOut := m.dims[l], m.dims[l+1]
		w := m.weights[l]
		g := grad[l]
		dOut := deltas[l+1]
		dIn := deltas[l]
		for i := 0; i < fanIn; i++ {
			dIn[i] = 0
		}
		for o := 0; o < fanOut; o++ {
			d := dOut[o]
			if d == 0 {
				continue
			}
			g[fanIn*fanOut+o] += d
			for i := 0; i < fanIn; i++ {
				g[i*fanOut+o] += d * acts[l][i]
				dIn[i] += d * w[i*fanOut+o]
			}
		}
		if l > 0 {
			for i := 0; i < fanIn; i++ {
				if acts[l][i] <= 0 {
					dIn[i] = 0
				}
			}
		}
	}
}

func (m *refANN) predict(x []float64) float64 {
	if m.weights == nil {
		return 0
	}
	acts := make([][]float64, len(m.dims))
	for l, d := range m.dims {
		acts[l] = make([]float64, d)
	}
	m.forward(x, acts)
	out := acts[len(acts)-1][0]
	if m.yStd != 0 && (m.yMean != 0 || m.yStd != 1) {
		out = out*m.yStd + m.yMean
	}
	return out
}

func annEquivData(seed int64, n, d int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
		y[i] = math.Sin(row[0]) + 0.5*row[1] - 0.3*row[2]*row[0] + 0.05*rng.NormFloat64()
	}
	return X, y
}

// annEquivConfigs covers plain squared loss, Huber + target normalization
// + weight decay (the tuned production config shape), a single hidden
// layer, and a batch size that does not divide n (partial final batch).
func annEquivConfigs() []Model {
	return []Model{
		{Hidden: []int{16, 8}, Epochs: 6, BatchSize: 16, LR: 1e-3},
		{Hidden: []int{12}, Epochs: 5, BatchSize: 7, LR: 2e-3, L2: 1e-4, HuberDelta: 0.5, NormalizeTarget: true},
		{Hidden: []int{8, 8}, Epochs: 4, BatchSize: 256, LR: 1e-3, NormalizeTarget: true}, // one batch = whole set
	}
}

// TestANNEquivalence gates the batched fast path on byte-identical
// weights and predictions vs the frozen per-sample reference.
func TestANNEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 11} {
		X, y := annEquivData(seed, 90, 6)
		probe, _ := annEquivData(seed+500, 30, 6)
		for ci, cfg := range annEquivConfigs() {
			ref := &refANN{
				Hidden: append([]int(nil), cfg.Hidden...), Epochs: cfg.Epochs, BatchSize: cfg.BatchSize,
				LR: cfg.LR, L2: cfg.L2, Seed: seed, HuberDelta: cfg.HuberDelta, NormalizeTarget: cfg.NormalizeTarget,
			}
			if err := ref.fit(X, y); err != nil {
				t.Fatalf("seed %d cfg %d: ref fit: %v", seed, ci, err)
			}
			fast := cfg
			fast.Seed = seed
			if err := fast.Fit(X, y); err != nil {
				t.Fatalf("seed %d cfg %d: fast fit: %v", seed, ci, err)
			}
			if len(ref.weights) != len(fast.weights) {
				t.Fatalf("layer count: ref %d fast %d", len(ref.weights), len(fast.weights))
			}
			for l := range ref.weights {
				if len(ref.weights[l]) != len(fast.weights[l]) {
					t.Fatalf("layer %d size mismatch", l)
				}
				for i := range ref.weights[l] {
					if math.Float64bits(ref.weights[l][i]) != math.Float64bits(fast.weights[l][i]) {
						t.Fatalf("seed %d cfg %d: layer %d weight %d: ref %v fast %v",
							seed, ci, l, i, ref.weights[l][i], fast.weights[l][i])
					}
				}
			}
			if math.Float64bits(ref.yMean) != math.Float64bits(fast.yMean) ||
				math.Float64bits(ref.yStd) != math.Float64bits(fast.yStd) {
				t.Fatalf("seed %d cfg %d: target scaling diverged", seed, ci)
			}
			out := make([]float64, len(probe))
			fast.PredictBatchInto(out, probe)
			for i, x := range probe {
				r := ref.predict(x)
				if f := fast.Predict(x); math.Float64bits(r) != math.Float64bits(f) {
					t.Fatalf("seed %d cfg %d: predict ref %v fast %v", seed, ci, r, f)
				}
				if math.Float64bits(r) != math.Float64bits(out[i]) {
					t.Fatalf("seed %d cfg %d: batch predict row %d diverges", seed, ci, i)
				}
			}
		}
	}
}
