package ann

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestANNSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = X[i][0] + X[i][1]
	}
	m := New([]int{8, 4}, 7)
	m.Epochs = 15
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if m.Predict(X[i]) != back.Predict(X[i]) {
			t.Fatalf("prediction %d differs after reload", i)
		}
	}
}

// TestANNRoundTripBatch checks the reloaded model through the batch fast
// path: pooled-scratch batch predictions must agree bitwise with the
// original model's per-row Predict.
func TestANNRoundTripBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X := make([][]float64, 80)
	y := make([]float64, 80)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = X[i][0] - 2*X[i][2]
	}
	m := New([]int{10, 6}, 11)
	m.Epochs = 10
	m.NormalizeTarget = true
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(X))
	back.PredictBatchInto(out, X)
	for i, x := range X {
		if want := m.Predict(x); out[i] != want {
			t.Fatalf("reloaded batch prediction %d = %v, want %v", i, out[i], want)
		}
	}
}

func TestANNUnmarshalValidatesShapes(t *testing.T) {
	var m Model
	bad := `{"dims":[2,3,1],"weights":[[1,2,3]]}`
	if err := json.Unmarshal([]byte(bad), &m); err == nil {
		t.Fatal("layer-count mismatch accepted")
	}
	bad2 := `{"dims":[2,1],"weights":[[1,2]]}`
	if err := json.Unmarshal([]byte(bad2), &m); err == nil {
		t.Fatal("weight-size mismatch accepted")
	}
}
