package ml

import (
	"fmt"
	"math/rand"
	"testing"
)

// slowModel is a deliberately CPU-heavy regressor standing in for the
// boosted/neural families, so the benchmark measures pool scaling rather
// than slice copying.
type slowModel struct {
	iters int
	w     []float64
}

func (m *slowModel) Fit(X [][]float64, y []float64) error {
	d := len(X[0])
	m.w = make([]float64, d)
	for it := 0; it < m.iters; it++ {
		for i, row := range X {
			pred := 0.0
			for j, v := range row {
				pred += m.w[j] * v
			}
			g := pred - y[i]
			for j, v := range row {
				m.w[j] -= 1e-3 * g * v
			}
		}
	}
	return nil
}

func (m *slowModel) Predict(x []float64) float64 {
	s := 0.0
	for j, v := range x {
		s += m.w[j] * v
	}
	return s
}

// BenchmarkGridSearchCV measures the (candidate × fold) grid evaluated
// sequentially vs on the worker pool. Workers sub-benchmark names carry
// the pool size so bench.sh can diff them.
func BenchmarkGridSearchCV(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n, d = 400, 24
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
		y[i] = X[i][0] - 0.5*X[i][1] + rng.NormFloat64()*0.05
	}
	factory := func(p Params) Regressor { return &slowModel{iters: int(p["iters"])} }
	grid := Grid{"iters": {60, 80, 100, 120}}

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := GridSearchCVWorkers(factory, grid, X, y, 10, rand.New(rand.NewSource(42)), workers)
				if err != nil {
					b.Fatal(err)
				}
				if res.Evaluated != 4 {
					b.Fatalf("evaluated %d candidates, want 4", res.Evaluated)
				}
			}
		})
	}
}
