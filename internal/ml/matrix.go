package ml

// Matrix is a dense row-major matrix on one contiguous backing slice —
// the flat data layout of the ML fast path. Where the original code moved
// `[][]float64`-of-pointers around (one heap object per row, rows
// scattered across the heap), the hot paths now thread a Matrix and reuse
// its backing array across folds and grid points; row views are materialized
// only at the model boundary, pointing into the flat data.
type Matrix struct {
	// Rows and Cols are the logical dimensions; Data holds Rows*Cols
	// values, row i occupying Data[i*Cols : (i+1)*Cols].
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows copies X into a fresh contiguous matrix. Ragged inputs
// keep their leading len(X[0]) columns; rows shorter than that are
// zero-padded (the model layer validates shapes, not the copy).
func MatrixFromRows(X [][]float64) Matrix {
	var m Matrix
	m.SetFromRows(X)
	return m
}

// SetFromRows resizes m to the shape of X (reusing the backing array when
// it is large enough) and copies every row in.
func (m *Matrix) SetFromRows(X [][]float64) {
	cols := 0
	if len(X) > 0 {
		cols = len(X[0])
	}
	m.Reset(len(X), cols)
	for i, row := range X {
		copy(m.Row(i), row)
	}
}

// Reset reshapes m to rows×cols, growing the backing array only when
// needed and otherwise reusing it. Contents after Reset are unspecified;
// callers overwrite every row they read.
func (m *Matrix) Reset(rows, cols int) {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
}

// Row returns the i-th row as a full-capacity view into the flat backing
// array: an append on the returned slice can never bleed into row i+1.
func (m Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols : (i+1)*m.Cols]
}

// RowViews fills dst (grown as needed) with one view per row and returns
// it. The views stay valid until the next Reset that grows the backing
// array; regenerate them after any reshape.
func (m Matrix) RowViews(dst [][]float64) [][]float64 {
	if cap(dst) < m.Rows {
		dst = make([][]float64, m.Rows)
	}
	dst = dst[:m.Rows]
	for i := range dst {
		dst[i] = m.Row(i)
	}
	return dst
}

// Gather copies the selected rows of src into m (resized to len(idx) rows),
// the flat-layout replacement for Take on the training side: per-fold and
// per-grid-point work reuses m's backing array instead of allocating a new
// row-pointer slice per cell.
func (m *Matrix) Gather(src Matrix, idx []int) {
	m.Reset(len(idx), src.Cols)
	for i, j := range idx {
		copy(m.Row(i), src.Row(j))
	}
}

// GatherVec copies the selected entries of src into dst, growing it as
// needed — the target-vector counterpart of Gather.
func GatherVec(dst []float64, src []float64, idx []int) []float64 {
	if cap(dst) < len(idx) {
		dst = make([]float64, len(idx))
	}
	dst = dst[:len(idx)]
	for i, j := range idx {
		dst[i] = src[j]
	}
	return dst
}
