package ml

import (
	"fmt"
	"math/rand"
)

// Params is one hyperparameter assignment.
type Params map[string]float64

// Grid enumerates the cross product of per-parameter candidate values, the
// exhaustive grid the paper searches with 10-fold cross-validation.
type Grid map[string][]float64

// Enumerate returns every parameter combination in deterministic order.
func (g Grid) Enumerate() []Params {
	keys := make([]string, 0, len(g))
	for k := range g {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := []Params{{}}
	for _, k := range keys {
		var next []Params
		for _, base := range out {
			for _, v := range g[k] {
				p := Params{}
				for bk, bv := range base {
					p[bk] = bv
				}
				p[k] = v
				next = append(next, p)
			}
		}
		out = next
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Factory builds a fresh regressor from a hyperparameter assignment.
type Factory func(Params) Regressor

// SearchResult reports the winning configuration of a grid search.
type SearchResult struct {
	Best      Params
	BestScore float64 // mean CV MAE of the winner (lower is better)
	Evaluated int
}

// GridSearchCV exhaustively evaluates the grid with k-fold cross-validation
// on (X, y), scoring by mean MAE across folds, and returns the best
// parameters. The rng seeds the fold shuffling; folds are identical across
// candidates so the comparison is paired.
func GridSearchCV(factory Factory, grid Grid, X [][]float64, y []float64, k int, rng *rand.Rand) (SearchResult, error) {
	if len(X) != len(y) || len(X) == 0 {
		return SearchResult{}, fmt.Errorf("ml: grid search on %d rows / %d targets", len(X), len(y))
	}
	folds := KFold(len(X), k, rng)
	res := SearchResult{BestScore: -1}
	for _, p := range grid.Enumerate() {
		score := 0.0
		for _, fold := range folds {
			trX, trY := Take(X, y, fold.Train)
			teX, teY := Take(X, y, fold.Test)
			m := factory(p)
			if err := m.Fit(trX, trY); err != nil {
				return SearchResult{}, fmt.Errorf("ml: grid search fit: %w", err)
			}
			score += MAE(teY, PredictBatch(m, teX))
		}
		score /= float64(len(folds))
		res.Evaluated++
		if res.BestScore < 0 || score < res.BestScore {
			res.BestScore = score
			res.Best = p
		}
	}
	return res, nil
}
