package ml

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Params is one hyperparameter assignment.
type Params map[string]float64

// Grid enumerates the cross product of per-parameter candidate values, the
// exhaustive grid the paper searches with 10-fold cross-validation.
type Grid map[string][]float64

// Enumerate returns every parameter combination in deterministic order.
func (g Grid) Enumerate() []Params {
	keys := make([]string, 0, len(g))
	for k := range g {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := []Params{{}}
	for _, k := range keys {
		var next []Params
		for _, base := range out {
			for _, v := range g[k] {
				p := Params{}
				for bk, bv := range base {
					p[bk] = bv
				}
				p[k] = v
				next = append(next, p)
			}
		}
		out = next
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Factory builds a fresh regressor from a hyperparameter assignment. A
// factory must be safe to call from multiple goroutines: the parallel grid
// search constructs one regressor per (candidate, fold) cell so no model
// state is ever shared between workers.
type Factory func(Params) Regressor

// SearchResult reports the winning configuration of a grid search.
type SearchResult struct {
	Best      Params
	BestScore float64 // mean CV MAE of the winner (lower is better)
	Evaluated int
}

// GridSearchCV exhaustively evaluates the grid with k-fold cross-validation
// on (X, y), scoring by mean MAE across folds, and returns the best
// parameters. The rng seeds the fold shuffling; folds are identical across
// candidates so the comparison is paired. It is the sequential
// (workers = 1) form of GridSearchCVWorkers.
func GridSearchCV(factory Factory, grid Grid, X [][]float64, y []float64, k int, rng *rand.Rand) (SearchResult, error) {
	return GridSearchCVWorkers(factory, grid, X, y, k, rng, 1)
}

// foldData is one fold's materialized train/test sets: row views into the
// search's flat feature matrix plus gathered target vectors, built once
// per fold and shared read-only by every candidate's cell. shared holds
// the fold's SharedTrainer digest (e.g. GBRT's binned matrix) when the
// model family supports one.
type foldData struct {
	trX, teX [][]float64
	trY, teY []float64
	shared   any
}

// cvBufPool recycles per-cell prediction buffers so scoring a cell does
// not allocate.
var cvBufPool = sync.Pool{New: func() any { s := make([]float64, 0, 256); return &s }}

// GridSearchCVWorkers is GridSearchCV with the (candidate × fold) cells
// evaluated on a bounded worker pool (workers <= 0 means one per CPU).
// Every cell trains its own fresh regressor from the factory, the folds
// are drawn from rng before any worker starts, and per-candidate fold
// scores are accumulated in fold order by a sequential reduce — so the
// returned SearchResult (winner, score, ties, error) is identical for
// every worker count.
//
// Fast path: the rows are flattened into one contiguous Matrix up front;
// each fold's train/test sets are row views into it, gathered once and
// shared by all candidates instead of re-copied per cell. When the
// factory's models implement SharedTrainer, each fold's training set is
// digested once (for GBRT: quantile-binned) and every candidate trains
// via FitShared — results are bit-identical to per-cell Fit because the
// digest depends only on the fold's rows, never on the hyperparameters.
func GridSearchCVWorkers(factory Factory, grid Grid, X [][]float64, y []float64, k int, rng *rand.Rand, workers int) (SearchResult, error) {
	return GridSearchCVObs(factory, grid, X, y, k, rng, workers, nil)
}

// GridSearchCVObs is GridSearchCVWorkers with observability: when o carries a
// tracer it wraps the search in an "ml.gridsearch" span with one "cv.cell"
// child per (candidate, fold) cell, and when o carries a metrics registry it
// counts cells (obs.MetricCVCells) and histograms per-cell wall time
// (obs.MetricCVCellMs). A nil observer is the plain search: observation never
// changes the folds, the schedule determinism, or the returned winner.
func GridSearchCVObs(factory Factory, grid Grid, X [][]float64, y []float64, k int, rng *rand.Rand, workers int, o *obs.Observer) (SearchResult, error) {
	if len(X) != len(y) || len(X) == 0 {
		return SearchResult{}, fmt.Errorf("ml: grid search on %d rows / %d targets", len(X), len(y))
	}
	folds := KFold(len(X), k, rng)
	cands := grid.Enumerate()
	nf := len(folds)

	ctx := context.Background()
	var root *obs.Span
	if o.Tracing() {
		ctx, root = obs.StartSpan(ctx, o, "ml.gridsearch",
			obs.Int("candidates", int64(len(cands))), obs.Int("folds", int64(nf)),
			obs.Int("rows", int64(len(X))))
	}
	defer root.End()

	full := MatrixFromRows(X)
	prep := make([]foldData, nf)
	shareWorthwhile := len(cands) > 1
	_ = parallel.ForEach(ctx, nf, workers, func(_ context.Context, f int) {
		fold := folds[f]
		fd := &prep[f]
		fd.trX = gatherViews(full, fold.Train)
		fd.teX = gatherViews(full, fold.Test)
		fd.trY = GatherVec(nil, y, fold.Train)
		fd.teY = GatherVec(nil, y, fold.Test)
		if !shareWorthwhile {
			return
		}
		if st, ok := factory(cands[0]).(SharedTrainer); ok {
			fd.shared = st.PrepareShared(fd.trX)
		}
	})

	// One task per (candidate, fold) cell; cell results land at a fixed
	// index so the reduce below is order-deterministic.
	maes, errs, _ := parallel.Map(ctx, len(cands)*nf, workers,
		func(ctx context.Context, i int) (float64, error) {
			ci, fi := i/nf, i%nf
			var sp *obs.Span
			var t0 time.Time
			if o != nil {
				t0 = time.Now()
				if obs.Tracing(ctx, o) {
					_, sp = obs.StartSpan(ctx, o, "cv.cell",
						obs.Int("candidate", int64(ci)), obs.Int("fold", int64(fi)))
				}
			}
			p, fd := cands[ci], &prep[fi]
			m := factory(p) // fresh model per cell: no state shared between workers
			var err error
			if st, ok := m.(SharedTrainer); ok && fd.shared != nil {
				err = st.FitShared(fd.shared, fd.trX, fd.trY)
			} else {
				err = m.Fit(fd.trX, fd.trY)
			}
			if err != nil {
				sp.SetError(err)
				sp.End()
				return 0, err
			}
			bp := cvBufPool.Get().(*[]float64)
			buf := *bp
			if cap(buf) < len(fd.teX) {
				buf = make([]float64, len(fd.teX))
			}
			buf = buf[:len(fd.teX)]
			mae := MAE(fd.teY, PredictBatchInto(m, fd.teX, buf))
			*bp = buf
			cvBufPool.Put(bp)
			sp.SetAttr(obs.Float("mae", mae))
			sp.End()
			if o != nil {
				o.Count(obs.MetricCVCells, 1)
				o.ObserveMs(obs.MetricCVCellMs, time.Since(t0))
			}
			return mae, nil
		})

	res := SearchResult{BestScore: -1}
	for ci, p := range cands {
		score := 0.0
		for fi := 0; fi < nf; fi++ {
			if err := errs[ci*nf+fi]; err != nil {
				return SearchResult{}, fmt.Errorf("ml: grid search fit: %w", err)
			}
			score += maes[ci*nf+fi]
		}
		score /= float64(nf)
		res.Evaluated++
		if res.BestScore < 0 || score < res.BestScore {
			res.BestScore = score
			res.Best = p
		}
	}
	return res, nil
}

// gatherViews returns the selected rows of m as views into its flat
// backing array.
func gatherViews(m Matrix, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = m.Row(j)
	}
	return out
}
