package ml

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/parallel"
)

// Params is one hyperparameter assignment.
type Params map[string]float64

// Grid enumerates the cross product of per-parameter candidate values, the
// exhaustive grid the paper searches with 10-fold cross-validation.
type Grid map[string][]float64

// Enumerate returns every parameter combination in deterministic order.
func (g Grid) Enumerate() []Params {
	keys := make([]string, 0, len(g))
	for k := range g {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := []Params{{}}
	for _, k := range keys {
		var next []Params
		for _, base := range out {
			for _, v := range g[k] {
				p := Params{}
				for bk, bv := range base {
					p[bk] = bv
				}
				p[k] = v
				next = append(next, p)
			}
		}
		out = next
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Factory builds a fresh regressor from a hyperparameter assignment. A
// factory must be safe to call from multiple goroutines: the parallel grid
// search constructs one regressor per (candidate, fold) cell so no model
// state is ever shared between workers.
type Factory func(Params) Regressor

// SearchResult reports the winning configuration of a grid search.
type SearchResult struct {
	Best      Params
	BestScore float64 // mean CV MAE of the winner (lower is better)
	Evaluated int
}

// GridSearchCV exhaustively evaluates the grid with k-fold cross-validation
// on (X, y), scoring by mean MAE across folds, and returns the best
// parameters. The rng seeds the fold shuffling; folds are identical across
// candidates so the comparison is paired. It is the sequential
// (workers = 1) form of GridSearchCVWorkers.
func GridSearchCV(factory Factory, grid Grid, X [][]float64, y []float64, k int, rng *rand.Rand) (SearchResult, error) {
	return GridSearchCVWorkers(factory, grid, X, y, k, rng, 1)
}

// GridSearchCVWorkers is GridSearchCV with the (candidate × fold) cells
// evaluated on a bounded worker pool (workers <= 0 means one per CPU).
// Every cell trains its own fresh regressor from the factory, the folds
// are drawn from rng before any worker starts, and per-candidate fold
// scores are accumulated in fold order by a sequential reduce — so the
// returned SearchResult (winner, score, ties, error) is identical for
// every worker count. X's rows are shared across workers and must not be
// mutated by Regressor.Fit.
func GridSearchCVWorkers(factory Factory, grid Grid, X [][]float64, y []float64, k int, rng *rand.Rand, workers int) (SearchResult, error) {
	if len(X) != len(y) || len(X) == 0 {
		return SearchResult{}, fmt.Errorf("ml: grid search on %d rows / %d targets", len(X), len(y))
	}
	folds := KFold(len(X), k, rng)
	cands := grid.Enumerate()
	nf := len(folds)

	// One task per (candidate, fold) cell; cell results land at a fixed
	// index so the reduce below is order-deterministic.
	maes, errs, _ := parallel.Map(context.Background(), len(cands)*nf, workers,
		func(_ context.Context, i int) (float64, error) {
			p, fold := cands[i/nf], folds[i%nf]
			trX, trY := Take(X, y, fold.Train)
			teX, teY := Take(X, y, fold.Test)
			m := factory(p) // fresh model per cell: no state shared between workers
			if err := m.Fit(trX, trY); err != nil {
				return 0, err
			}
			return MAE(teY, PredictBatch(m, teX)), nil
		})

	res := SearchResult{BestScore: -1}
	for ci, p := range cands {
		score := 0.0
		for fi := 0; fi < nf; fi++ {
			if err := errs[ci*nf+fi]; err != nil {
				return SearchResult{}, fmt.Errorf("ml: grid search fit: %w", err)
			}
			score += maes[ci*nf+fi]
		}
		score /= float64(nf)
		res.Evaluated++
		if res.BestScore < 0 || score < res.BestScore {
			res.BestScore = score
			res.Best = p
		}
	}
	return res, nil
}
