// Package lasso implements L1-regularized linear regression trained by
// cyclic coordinate descent — the paper's "Linear" model (a Lasso with the
// regularization constant as its tuning parameter). Inputs should be
// standardized; ml.Scaler does that.
package lasso

import (
	"fmt"
	"math"
)

// Model is a Lasso linear regressor.
type Model struct {
	// Alpha is the L1-regularization strength; larger values drive more
	// weights to exactly zero.
	Alpha float64
	// MaxIter bounds the coordinate-descent sweeps (default 1000).
	MaxIter int
	// Tol stops iteration when the largest coefficient update falls below
	// it (default 1e-6).
	Tol float64

	// Learned parameters.
	Weights   []float64
	Intercept float64
}

// New returns a Lasso with the given regularization strength.
func New(alpha float64) *Model {
	return &Model{Alpha: alpha, MaxIter: 1000, Tol: 1e-6}
}

// Fit trains by cyclic coordinate descent with soft thresholding.
func (m *Model) Fit(X [][]float64, y []float64) error {
	n := len(X)
	if n == 0 || n != len(y) {
		return fmt.Errorf("lasso: fit on %d rows / %d targets", n, len(y))
	}
	d := len(X[0])
	for i, row := range X {
		if len(row) != d {
			return fmt.Errorf("lasso: row %d has %d columns, want %d", i, len(row), d)
		}
	}
	if m.MaxIter <= 0 {
		m.MaxIter = 1000
	}
	if m.Tol <= 0 {
		m.Tol = 1e-6
	}
	fn := float64(n)
	// Column-major copy on one flat backing array for cache-friendly
	// sweeps: column j occupies colData[j*n : (j+1)*n].
	colData := make([]float64, d*n)
	colSq := make([]float64, d)
	for j := 0; j < d; j++ {
		cj := colData[j*n : (j+1)*n]
		for i := 0; i < n; i++ {
			v := X[i][j]
			cj[i] = v
			colSq[j] += v * v
		}
		colSq[j] /= fn
	}
	w := make([]float64, d)
	// Intercept starts at the target mean; residual r = y - Xw - b.
	b := 0.0
	for _, v := range y {
		b += v
	}
	b /= fn
	r := make([]float64, n)
	for i := range r {
		r[i] = y[i] - b
	}

	for it := 0; it < m.MaxIter; it++ {
		maxDelta := 0.0
		for j := 0; j < d; j++ {
			if colSq[j] == 0 {
				continue
			}
			wj := w[j]
			// rho = (1/n) x_j . (r + x_j*wj)
			rho := 0.0
			cj := colData[j*n : (j+1)*n]
			for i := 0; i < n; i++ {
				rho += cj[i] * (r[i] + cj[i]*wj)
			}
			rho /= fn
			nw := softThreshold(rho, m.Alpha) / colSq[j]
			if nw != wj {
				delta := nw - wj
				for i := 0; i < n; i++ {
					r[i] -= cj[i] * delta
				}
				w[j] = nw
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
			}
		}
		// Re-center the intercept.
		mean := 0.0
		for i := 0; i < n; i++ {
			mean += r[i]
		}
		mean /= fn
		if mean != 0 {
			b += mean
			for i := 0; i < n; i++ {
				r[i] -= mean
			}
		}
		if maxDelta < m.Tol {
			break
		}
	}
	m.Weights = w
	m.Intercept = b
	return nil
}

// Predict returns w.x + b.
func (m *Model) Predict(x []float64) float64 {
	s := m.Intercept
	for j, v := range x {
		if j < len(m.Weights) {
			s += m.Weights[j] * v
		}
	}
	return s
}

// PredictBatchInto writes the estimate for X[i] into out[i] without
// allocating (ml.BatchPredictor). Values are identical to Predict.
func (m *Model) PredictBatchInto(out []float64, X [][]float64) {
	for i, x := range X {
		out[i] = m.Predict(x)
	}
}

// NumNonZero counts the surviving coefficients, a sparsity diagnostic.
func (m *Model) NumNonZero() int {
	n := 0
	for _, w := range m.Weights {
		if w != 0 {
			n++
		}
	}
	return n
}

func softThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	}
	return 0
}
