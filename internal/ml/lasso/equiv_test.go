package lasso

// Frozen reference implementation of the coordinate-descent trainer, kept
// verbatim from before the flat-column fast path (one []float64 per
// column) with ref* renames. The flat layout changes only where column j
// lives, never the arithmetic, so weights and intercept must stay
// byte-identical. Same pattern as internal/place/equiv_test.go.

import (
	"math"
	"math/rand"
	"testing"
)

type refLasso struct {
	Alpha   float64
	MaxIter int
	Tol     float64

	Weights   []float64
	Intercept float64
}

func (m *refLasso) fit(X [][]float64, y []float64) error {
	n := len(X)
	d := len(X[0])
	if m.MaxIter <= 0 {
		m.MaxIter = 1000
	}
	if m.Tol <= 0 {
		m.Tol = 1e-6
	}
	fn := float64(n)
	cols := make([][]float64, d)
	colSq := make([]float64, d)
	for j := 0; j < d; j++ {
		cols[j] = make([]float64, n)
		for i := 0; i < n; i++ {
			v := X[i][j]
			cols[j][i] = v
			colSq[j] += v * v
		}
		colSq[j] /= fn
	}
	w := make([]float64, d)
	b := 0.0
	for _, v := range y {
		b += v
	}
	b /= fn
	r := make([]float64, n)
	for i := range r {
		r[i] = y[i] - b
	}

	for it := 0; it < m.MaxIter; it++ {
		maxDelta := 0.0
		for j := 0; j < d; j++ {
			if colSq[j] == 0 {
				continue
			}
			wj := w[j]
			rho := 0.0
			cj := cols[j]
			for i := 0; i < n; i++ {
				rho += cj[i] * (r[i] + cj[i]*wj)
			}
			rho /= fn
			nw := refSoftThreshold(rho, m.Alpha) / colSq[j]
			if nw != wj {
				delta := nw - wj
				for i := 0; i < n; i++ {
					r[i] -= cj[i] * delta
				}
				w[j] = nw
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
			}
		}
		mean := 0.0
		for i := 0; i < n; i++ {
			mean += r[i]
		}
		mean /= fn
		if mean != 0 {
			b += mean
			for i := 0; i < n; i++ {
				r[i] -= mean
			}
		}
		if maxDelta < m.Tol {
			break
		}
	}
	m.Weights = w
	m.Intercept = b
	return nil
}

func (m *refLasso) predict(x []float64) float64 {
	s := m.Intercept
	for j, v := range x {
		if j < len(m.Weights) {
			s += m.Weights[j] * v
		}
	}
	return s
}

func refSoftThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	}
	return 0
}

func lassoEquivData(seed int64, n, d int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			if j == d-1 {
				row[j] = 1.5 // constant column minus mean -> colSq == 0 path
			} else {
				row[j] = rng.NormFloat64()
			}
		}
		X[i] = row
		y[i] = 3*row[0] - 2*row[1] + 0.2*rng.NormFloat64()
	}
	// Center columns so the constant one has zero variance exactly.
	for j := 0; j < d; j++ {
		mean := 0.0
		for i := range X {
			mean += X[i][j]
		}
		mean /= float64(n)
		for i := range X {
			X[i][j] -= mean
		}
	}
	return X, y
}

// TestLassoEquivalence gates the flat-column fast path on byte-identical
// coefficients and predictions vs the frozen reference.
func TestLassoEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7} {
		X, y := lassoEquivData(seed, 80, 12)
		probe, _ := lassoEquivData(seed+300, 25, 12)
		for _, alpha := range []float64{0.001, 0.05, 0.5} {
			ref := &refLasso{Alpha: alpha}
			if err := ref.fit(X, y); err != nil {
				t.Fatalf("ref fit: %v", err)
			}
			fast := New(alpha)
			if err := fast.Fit(X, y); err != nil {
				t.Fatalf("fast fit: %v", err)
			}
			if math.Float64bits(ref.Intercept) != math.Float64bits(fast.Intercept) {
				t.Fatalf("seed %d alpha %v: intercept ref %v fast %v", seed, alpha, ref.Intercept, fast.Intercept)
			}
			for j := range ref.Weights {
				if math.Float64bits(ref.Weights[j]) != math.Float64bits(fast.Weights[j]) {
					t.Fatalf("seed %d alpha %v: weight %d ref %v fast %v", seed, alpha, j, ref.Weights[j], fast.Weights[j])
				}
			}
			out := make([]float64, len(probe))
			fast.PredictBatchInto(out, probe)
			for i, x := range probe {
				r := ref.predict(x)
				if math.Float64bits(r) != math.Float64bits(out[i]) {
					t.Fatalf("seed %d alpha %v: batch predict row %d diverges", seed, alpha, i)
				}
			}
		}
	}
}
