package lasso

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
)

// sparseLinearData generates y = 3*x0 - 2*x3 + 1 + noise over d features.
func sparseLinearData(n, d int, noise float64, rng *rand.Rand) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
		y[i] = 3*X[i][0] - 2*X[i][3] + 1 + noise*rng.NormFloat64()
	}
	return X, y
}

func TestLassoRecoversSparseSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := sparseLinearData(400, 10, 0.01, rng)
	m := New(0.01)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-3) > 0.1 {
		t.Errorf("w0 = %v, want ~3", m.Weights[0])
	}
	if math.Abs(m.Weights[3]+2) > 0.1 {
		t.Errorf("w3 = %v, want ~-2", m.Weights[3])
	}
	if math.Abs(m.Intercept-1) > 0.1 {
		t.Errorf("intercept = %v, want ~1", m.Intercept)
	}
	pred := ml.PredictBatch(m, X)
	if mae := ml.MAE(y, pred); mae > 0.1 {
		t.Errorf("train MAE = %v", mae)
	}
}

func TestLassoSparsityGrowsWithAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := sparseLinearData(300, 20, 0.05, rng)
	weak := New(0.001)
	strong := New(1.0)
	if err := weak.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := strong.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if strong.NumNonZero() >= weak.NumNonZero() {
		t.Errorf("alpha=1.0 kept %d weights, alpha=0.001 kept %d — L1 not shrinking",
			strong.NumNonZero(), weak.NumNonZero())
	}
	// Strong regularization must still keep the two real signals.
	if strong.Weights[0] == 0 {
		t.Error("strongest signal eliminated")
	}
}

func TestLassoHugeAlphaPredictsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := sparseLinearData(100, 5, 0.01, rng)
	m := New(1e6)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.NumNonZero() != 0 {
		t.Fatalf("alpha=1e6 kept %d weights", m.NumNonZero())
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	if math.Abs(m.Predict(X[0])-mean) > 1e-6 {
		t.Errorf("all-zero model predicts %v, want mean %v", m.Predict(X[0]), mean)
	}
}

func TestLassoErrors(t *testing.T) {
	m := New(0.1)
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if err := m.Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("row/target mismatch accepted")
	}
	if err := m.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestLassoConstantColumnIgnored(t *testing.T) {
	X := [][]float64{{1, 1}, {1, 2}, {1, 3}, {1, 4}}
	y := []float64{2, 4, 6, 8}
	m := New(0.001)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if m.Weights[0] != 0 {
		t.Errorf("constant column got weight %v", m.Weights[0])
	}
	if math.Abs(m.Predict([]float64{1, 5})-10) > 0.2 {
		t.Errorf("prediction at x=5: %v, want ~10", m.Predict([]float64{1, 5}))
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ v, t, want float64 }{
		{5, 2, 3}, {-5, 2, -3}, {1, 2, 0}, {-1, 2, 0}, {2, 2, 0},
	}
	for _, c := range cases {
		if got := softThreshold(c.v, c.t); got != c.want {
			t.Errorf("soft(%v,%v) = %v, want %v", c.v, c.t, got, c.want)
		}
	}
}

func TestLassoPredictShortRow(t *testing.T) {
	m := New(0.1)
	_ = m.Fit([][]float64{{1, 2}, {2, 1}, {0, 1}}, []float64{1, 2, 3})
	// A row shorter than the weight vector must not panic.
	_ = m.Predict([]float64{1})
}
