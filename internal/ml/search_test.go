package ml

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/obs"
)

func TestGridEnumerate(t *testing.T) {
	g := Grid{"a": {1, 2}, "b": {10, 20, 30}}
	all := g.Enumerate()
	if len(all) != 6 {
		t.Fatalf("enumeration size = %d, want 6", len(all))
	}
	seen := make(map[[2]float64]bool)
	for _, p := range all {
		seen[[2]float64{p["a"], p["b"]}] = true
	}
	if len(seen) != 6 {
		t.Fatal("duplicate combinations")
	}
	// Empty grid yields the single empty assignment.
	if got := len(Grid{}.Enumerate()); got != 1 {
		t.Errorf("empty grid enumerations = %d", got)
	}
}

// biasModel predicts a constant chosen by the "bias" hyperparameter.
type biasModel struct{ bias float64 }

func (m *biasModel) Fit(X [][]float64, y []float64) error { return nil }
func (m *biasModel) Predict(x []float64) float64          { return m.bias }

func TestGridSearchFindsBest(t *testing.T) {
	// Targets are all 5.0; the candidate with bias 5 must win.
	n := 40
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{0}
		y[i] = 5
	}
	factory := func(p Params) Regressor { return &biasModel{bias: p["bias"]} }
	res, err := GridSearchCV(factory, Grid{"bias": {1, 3, 5, 9}}, X, y, 5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["bias"] != 5 {
		t.Errorf("best bias = %v, want 5", res.Best["bias"])
	}
	if res.BestScore != 0 {
		t.Errorf("best score = %v, want 0", res.BestScore)
	}
	if res.Evaluated != 4 {
		t.Errorf("evaluated %d candidates", res.Evaluated)
	}
}

type failModel struct{}

func (failModel) Fit(X [][]float64, y []float64) error { return errors.New("boom") }
func (failModel) Predict(x []float64) float64          { return 0 }

func TestGridSearchPropagatesErrors(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 1, 2, 3}
	_, err := GridSearchCV(func(Params) Regressor { return failModel{} },
		Grid{"a": {1}}, X, y, 2, rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("fit error swallowed")
	}
	if _, err := GridSearchCV(func(Params) Regressor { return failModel{} },
		Grid{}, nil, nil, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty dataset accepted")
	}
	// Error propagation holds under the parallel form too.
	if _, err := GridSearchCVWorkers(func(Params) Regressor { return failModel{} },
		Grid{"a": {1, 2}}, X, y, 2, rand.New(rand.NewSource(1)), 4); err == nil {
		t.Fatal("parallel fit error swallowed")
	}
}

// meanModel predicts the training-target mean scaled by a hyperparameter;
// unlike biasModel its fit actually depends on the fold, exercising the
// per-cell float pipeline.
type meanModel struct {
	scale float64
	mean  float64
}

func (m *meanModel) Fit(X [][]float64, y []float64) error {
	s := 0.0
	for _, v := range y {
		s += v
	}
	m.mean = s / float64(len(y))
	return nil
}
func (m *meanModel) Predict(x []float64) float64 { return m.scale * (m.mean + x[0]*0.01) }

// TestGridSearchWorkersMatchesSequential is the grid-search determinism
// contract: same folds, same winner, bit-equal score, whatever the worker
// count.
func TestGridSearchWorkersMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 120
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64() * 3}
		y[i] = 2*X[i][0] - X[i][1] + rng.NormFloat64()*0.1
	}
	factory := func(p Params) Regressor { return &meanModel{scale: p["scale"]} }
	grid := Grid{"scale": {0.25, 0.5, 0.75, 1.0, 1.25}}

	seq, err := GridSearchCVWorkers(factory, grid, X, y, 10, rand.New(rand.NewSource(42)), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 0} {
		par, err := GridSearchCVWorkers(factory, grid, X, y, 10, rand.New(rand.NewSource(42)), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.BestScore != seq.BestScore || par.Evaluated != seq.Evaluated {
			t.Fatalf("workers=%d: result %+v differs from sequential %+v", workers, par, seq)
		}
		if len(par.Best) != len(seq.Best) {
			t.Fatalf("workers=%d: winner params differ: %v vs %v", workers, par.Best, seq.Best)
		}
		for k, v := range seq.Best {
			if par.Best[k] != v {
				t.Fatalf("workers=%d: winner %v differs from sequential %v", workers, par.Best, seq.Best)
			}
		}
	}
}

// TestGridSearchObserved: the observed search returns exactly what the
// bare search returns and records the gridsearch span tree plus cell
// metrics.
func TestGridSearchObserved(t *testing.T) {
	n := 40
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{float64(i)}
		y[i] = 5
	}
	factory := func(p Params) Regressor { return &biasModel{bias: p["bias"]} }
	grid := Grid{"bias": {3, 5, 7}}
	const folds = 4

	bare, err := GridSearchCVWorkers(factory, grid, X, y, folds, rand.New(rand.NewSource(1)), 2)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	seen, err := GridSearchCVObs(factory, grid, X, y, folds, rand.New(rand.NewSource(1)), 2, o)
	if err != nil {
		t.Fatal(err)
	}
	if bare.BestScore != seen.BestScore || bare.Evaluated != seen.Evaluated ||
		bare.Best["bias"] != seen.Best["bias"] {
		t.Fatalf("observed search diverged: %+v vs %+v", bare, seen)
	}

	cells := 0
	root := false
	for _, s := range o.Trace.Spans() {
		switch s.Name {
		case "cv.cell":
			cells++
		case "ml.gridsearch":
			root = true
		}
	}
	wantCells := 3 * folds
	if !root || cells != wantCells {
		t.Errorf("spans: root=%v cells=%d, want root and %d cells", root, cells, wantCells)
	}
	snap := o.Reg.Snapshot()
	if v, _ := snap.Counter(obs.MetricCVCells); v != int64(wantCells) {
		t.Errorf("%s=%d, want %d", obs.MetricCVCells, v, wantCells)
	}
	if h := snap.Histogram(obs.MetricCVCellMs); h == nil || h.Count != int64(wantCells) {
		t.Errorf("cell duration histogram wrong: %+v", h)
	}
}
