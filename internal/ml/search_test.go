package ml

import (
	"errors"
	"math/rand"
	"testing"
)

func TestGridEnumerate(t *testing.T) {
	g := Grid{"a": {1, 2}, "b": {10, 20, 30}}
	all := g.Enumerate()
	if len(all) != 6 {
		t.Fatalf("enumeration size = %d, want 6", len(all))
	}
	seen := make(map[[2]float64]bool)
	for _, p := range all {
		seen[[2]float64{p["a"], p["b"]}] = true
	}
	if len(seen) != 6 {
		t.Fatal("duplicate combinations")
	}
	// Empty grid yields the single empty assignment.
	if got := len(Grid{}.Enumerate()); got != 1 {
		t.Errorf("empty grid enumerations = %d", got)
	}
}

// biasModel predicts a constant chosen by the "bias" hyperparameter.
type biasModel struct{ bias float64 }

func (m *biasModel) Fit(X [][]float64, y []float64) error { return nil }
func (m *biasModel) Predict(x []float64) float64          { return m.bias }

func TestGridSearchFindsBest(t *testing.T) {
	// Targets are all 5.0; the candidate with bias 5 must win.
	n := 40
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{0}
		y[i] = 5
	}
	factory := func(p Params) Regressor { return &biasModel{bias: p["bias"]} }
	res, err := GridSearchCV(factory, Grid{"bias": {1, 3, 5, 9}}, X, y, 5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["bias"] != 5 {
		t.Errorf("best bias = %v, want 5", res.Best["bias"])
	}
	if res.BestScore != 0 {
		t.Errorf("best score = %v, want 0", res.BestScore)
	}
	if res.Evaluated != 4 {
		t.Errorf("evaluated %d candidates", res.Evaluated)
	}
}

type failModel struct{}

func (failModel) Fit(X [][]float64, y []float64) error { return errors.New("boom") }
func (failModel) Predict(x []float64) float64          { return 0 }

func TestGridSearchPropagatesErrors(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 1, 2, 3}
	_, err := GridSearchCV(func(Params) Regressor { return failModel{} },
		Grid{"a": {1}}, X, y, 2, rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("fit error swallowed")
	}
	if _, err := GridSearchCV(func(Params) Regressor { return failModel{} },
		Grid{}, nil, nil, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
