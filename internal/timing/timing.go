// Package timing performs static timing analysis over the placed-and-routed
// design. Arrival times combine the scheduler's intra-state combinational
// chains with wire delays derived from each connection's routed length and
// congestion: wires through overflowed tiles pay a detour factor, which is
// how routing congestion degrades WNS and maximum frequency in the paper's
// Tables I, III and VI.
package timing

import (
	"math"

	"repro/internal/hls"
	"repro/internal/route"
	"repro/internal/rtl"
)

// Model holds the interconnect delay model constants.
type Model struct {
	BaseNS    float64 // fixed connection overhead
	PerTileNS float64 // delay per tile traversed at low utilization
	AvgKnee   float64 // average-utilization ratio where detours begin
	AvgSlope  float64 // per-tile multiplier per unit of average overflow
	MaxSlope  float64 // per-tile multiplier per unit of worst-tile overflow
	MaxOverNS float64 // flat penalty per unit of worst-tile overflow
}

// DefaultModel returns constants calibrated so an uncongested design meets
// a 100 MHz target within a fraction of a nanosecond while heavily
// congested designs degrade toward ~40 MHz, matching the paper's Table I
// span. Connections through overfull tiles pay both a per-tile detour
// multiplier and a flat rip-up penalty, so the worst tile on the path
// dominates — congestion, not raw distance, sets the critical path.
func DefaultModel() Model {
	return Model{BaseNS: 0.15, PerTileNS: 0.03, AvgKnee: 0.6, AvgSlope: 1.5,
		MaxSlope: 3.0, MaxOverNS: 12.0}
}

// WireDelay returns the modeled delay of one routed connection.
func (md Model) WireDelay(p route.PinStats) float64 {
	factor := 1.0
	if p.AvgUtil > md.AvgKnee {
		factor += md.AvgSlope * (p.AvgUtil - md.AvgKnee)
	}
	if p.MaxUtil > 1.0 {
		factor += md.MaxSlope * (p.MaxUtil - 1.0)
	}
	d := md.BaseNS + md.PerTileNS*float64(p.Length)*factor
	if p.MaxUtil > 1.0 {
		// Quadratic in the overflow: mildly congested paths survive, paths
		// through badly overfull tiles blow up — the rip-up behaviour real
		// routers exhibit.
		over := p.MaxUtil - 1.0
		d += md.MaxOverNS * over * over
	}
	return d
}

// Report is the STA outcome for one implementation.
type Report struct {
	CriticalNS    float64 // worst register-to-register arrival incl. uncertainty
	WNS           float64 // worst negative slack vs the target period
	FmaxMHz       float64 // 1000 / CriticalNS
	LatencyCycles int64   // top-function latency from the schedule
}

// Analyze computes the timing report.
func Analyze(s *hls.Schedule, nl *rtl.Netlist, rr *route.Result, md Model) *Report {
	// Worst intra-state combinational finish per cell: the logic part of any
	// path ending at that cell.
	intrinsic := make([]float64, len(nl.Cells))
	for _, c := range nl.Cells {
		worst := 0.5 // structural cells (mux select, memory output)
		for _, o := range c.Ops() {
			if d := s.Slots[o].FinishDelay; d > worst {
				worst = d
			}
		}
		intrinsic[c.ID] = worst
	}
	critical := 0.0
	for _, c := range nl.Cells {
		if intrinsic[c.ID] > critical {
			critical = intrinsic[c.ID]
		}
	}
	for _, p := range rr.Pins {
		d := md.WireDelay(p) + intrinsic[p.Sink.Cell.ID]
		if d > critical {
			critical = d
		}
	}
	arrival := critical + s.Clock.UncertaintyNS
	var lat int64
	if fs := s.Funcs[s.Mod.Top]; fs != nil {
		lat = fs.LatencyCycles
	}
	return &Report{
		CriticalNS:    arrival,
		WNS:           s.Clock.PeriodNS - arrival,
		FmaxMHz:       1000.0 / arrival,
		LatencyCycles: lat,
	}
}

// RoundWNS rounds a slack to the milli-nanosecond precision Vivado reports.
func RoundWNS(wns float64) float64 { return math.Round(wns*1000) / 1000 }
