package timing

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hls"
	"repro/internal/route"
	"repro/internal/rtl"
)

// Path is one timing path: a routed connection plus the combinational
// logic it terminates in, reported the way Vivado's timing summary lists
// its worst paths.
type Path struct {
	Net     *rtl.Net
	Sink    *rtl.Cell
	WireNS  float64 // interconnect delay (congestion-aware)
	LogicNS float64 // intra-state combinational delay at the sink
	TotalNS float64
	Length  int     // tiles traversed
	MaxUtil float64 // worst routing utilization on the path
}

// CriticalPaths returns the k slowest paths of an implementation, sorted
// by total delay. It is the drill-down behind Report.CriticalNS: the first
// entry's total plus the clock uncertainty equals the reported critical
// arrival.
func CriticalPaths(s *hls.Schedule, nl *rtl.Netlist, rr *route.Result, md Model, k int) []Path {
	intrinsic := make([]float64, len(nl.Cells))
	for _, c := range nl.Cells {
		worst := 0.5
		for _, o := range c.Ops() {
			if d := s.Slots[o].FinishDelay; d > worst {
				worst = d
			}
		}
		intrinsic[c.ID] = worst
	}
	paths := make([]Path, 0, len(rr.Pins))
	for _, p := range rr.Pins {
		wire := md.WireDelay(p)
		logic := intrinsic[p.Sink.Cell.ID]
		paths = append(paths, Path{
			Net:     p.Net,
			Sink:    p.Sink.Cell,
			WireNS:  wire,
			LogicNS: logic,
			TotalNS: wire + logic,
			Length:  p.Length,
			MaxUtil: p.MaxUtil,
		})
	}
	sort.Slice(paths, func(i, j int) bool { return paths[i].TotalNS > paths[j].TotalNS })
	if k > 0 && len(paths) > k {
		paths = paths[:k]
	}
	return paths
}

// FormatPaths renders a timing-summary style listing.
func FormatPaths(paths []Path) string {
	var b strings.Builder
	b.WriteString("WORST TIMING PATHS (wire + logic, congestion-aware)\n")
	for i, p := range paths {
		name := "<structural>"
		if p.Net != nil {
			name = p.Net.Name
		}
		fmt.Fprintf(&b, "%2d. %-40s -> %-28s total %6.2f ns (wire %5.2f, logic %5.2f, %d tiles, worst util %.0f%%)\n",
			i+1, name, p.Sink.Name, p.TotalNS, p.WireNS, p.LogicNS, p.Length, 100*p.MaxUtil)
	}
	return b.String()
}
