package timing

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/fpga"
	"repro/internal/hls"
	"repro/internal/ir"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rtl"
)

func TestWireDelayMonotonicInLength(t *testing.T) {
	md := DefaultModel()
	short := md.WireDelay(route.PinStats{Length: 5, AvgUtil: 0.3, MaxUtil: 0.4})
	long := md.WireDelay(route.PinStats{Length: 50, AvgUtil: 0.3, MaxUtil: 0.4})
	if long <= short {
		t.Errorf("longer wire not slower: %v vs %v", short, long)
	}
}

func TestWireDelayMonotonicInCongestion(t *testing.T) {
	md := DefaultModel()
	cool := md.WireDelay(route.PinStats{Length: 20, AvgUtil: 0.4, MaxUtil: 0.5})
	warm := md.WireDelay(route.PinStats{Length: 20, AvgUtil: 0.9, MaxUtil: 1.1})
	hot := md.WireDelay(route.PinStats{Length: 20, AvgUtil: 1.2, MaxUtil: 1.8})
	if !(cool < warm && warm < hot) {
		t.Errorf("congestion ordering broken: %v %v %v", cool, warm, hot)
	}
	// The quadratic overflow term dominates for badly overfull tiles.
	if hot-warm <= warm-cool {
		t.Errorf("overflow penalty should accelerate: deltas %v then %v", warm-cool, hot-warm)
	}
}

func TestWireDelayProperty(t *testing.T) {
	md := DefaultModel()
	f := func(length uint8, avgQ, maxQ uint8) bool {
		avg := float64(avgQ) / 100
		max := avg + float64(maxQ)/100
		d := md.WireDelay(route.PinStats{Length: int(length), AvgUtil: avg, MaxUtil: max})
		return d >= md.BaseNS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundWNS(t *testing.T) {
	if RoundWNS(-13.6434999) != -13.643 {
		t.Errorf("RoundWNS = %v", RoundWNS(-13.6434999))
	}
	if RoundWNS(0.0005) != 0.001 {
		t.Errorf("RoundWNS = %v", RoundWNS(0.0005))
	}
}

// analyze runs the full flow by hand on a small design.
func analyze(t *testing.T) (*hls.Schedule, *Report) {
	t.Helper()
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	cur := p
	for i := 0; i < 10; i++ {
		cur = b.Op(ir.KindAdd, 16, cur, p)
	}
	b.Ret(cur)
	s, err := hls.ScheduleModule(m, hls.DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	nl := rtl.Elaborate(hls.BindModule(s))
	opts := place.DefaultOptions()
	opts.Moves = 2000
	pl, err := place.Place(nl, fpga.XC7Z020(), rand.New(rand.NewSource(1)), opts)
	if err != nil {
		t.Fatal(err)
	}
	rr := route.Route(pl, rand.New(rand.NewSource(1)), route.DefaultOptions())
	return s, Analyze(s, nl, rr, DefaultModel())
}

func TestAnalyzeConsistency(t *testing.T) {
	s, rep := analyze(t)
	if rep.CriticalNS <= s.Clock.UncertaintyNS {
		t.Errorf("critical %v must exceed the uncertainty alone", rep.CriticalNS)
	}
	// WNS + critical == target period, by construction.
	if diff := rep.WNS + rep.CriticalNS - s.Clock.PeriodNS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("WNS (%v) + critical (%v) != period (%v)", rep.WNS, rep.CriticalNS, s.Clock.PeriodNS)
	}
	if fm := 1000.0 / rep.CriticalNS; fm != rep.FmaxMHz {
		t.Errorf("Fmax %v != 1000/critical %v", rep.FmaxMHz, fm)
	}
	if rep.LatencyCycles <= 0 {
		t.Error("latency missing")
	}
	// An uncongested tiny design must be near the 100 MHz target.
	if rep.FmaxMHz < 60 {
		t.Errorf("tiny design Fmax = %v MHz, suspiciously slow", rep.FmaxMHz)
	}
}

func TestCriticalPaths(t *testing.T) {
	m := ir.NewModule("m")
	b := ir.NewBuilder(m.NewFunction("f"))
	p := b.Port("p", 16)
	cur := p
	for i := 0; i < 6; i++ {
		cur = b.Op(ir.KindAdd, 16, cur, p)
	}
	b.Ret(cur)
	s, err := hls.ScheduleModule(m, hls.DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	nl := rtl.Elaborate(hls.BindModule(s))
	opts := place.DefaultOptions()
	opts.Moves = 1500
	pl, err := place.Place(nl, fpga.XC7Z020(), rand.New(rand.NewSource(2)), opts)
	if err != nil {
		t.Fatal(err)
	}
	rr := route.Route(pl, rand.New(rand.NewSource(2)), route.DefaultOptions())
	md := DefaultModel()
	paths := CriticalPaths(s, nl, rr, md, 5)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for i := 1; i < len(paths); i++ {
		if paths[i-1].TotalNS < paths[i].TotalNS {
			t.Fatal("paths not sorted by delay")
		}
	}
	// Consistency with the summary report.
	rep := Analyze(s, nl, rr, md)
	if diff := paths[0].TotalNS + s.Clock.UncertaintyNS - rep.CriticalNS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("worst path %v + uncertainty != critical %v", paths[0].TotalNS, rep.CriticalNS)
	}
	out := FormatPaths(paths)
	if !strings.Contains(out, "WORST TIMING PATHS") {
		t.Error("format header missing")
	}
}
