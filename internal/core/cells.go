package core

import (
	"context"
	"fmt"

	"repro/internal/backtrace"
	"repro/internal/dataset"
	"repro/internal/flow"
	"repro/internal/ir"
	"repro/internal/parallel"
)

// This file is the dataset build's cell layer: the (module × label-run)
// grid every build — local worker pool or distributed fleet — executes.
// The grid, the per-cell seed derivation and the index-ordered reduction
// are the entire determinism contract: any executor that returns the same
// per-cell flow results produces a byte-identical dataset, because
// assembly never depends on *who* ran a cell or *when* it finished.

// cellSeedStride separates the placement seeds of a module's label runs; a
// large prime keeps re-rolled retry seeds (flow.RetryPolicy.SeedStride)
// from colliding with neighbor runs.
const cellSeedStride = 7919

// Cell identifies one (module, label-run) flow execution within a dataset
// build grid. Cells are ordered module-major: cell index k covers module
// k/labelRuns at label run k%labelRuns.
type Cell struct {
	// Module indexes the build's module slice.
	Module int
	// Run is the zero-based label-averaging run.
	Run int
}

// Index returns the cell's position in the module-major grid.
func (c Cell) Index(labelRuns int) int { return c.Module*labelRuns + c.Run }

// CellConfig returns the exact flow configuration label run `run` of a
// build with base config cfg executes: the placement seed is derived from
// the run position alone, never from scheduling, which is what makes every
// executor (sequential, worker pool, build fleet) produce the same
// per-cell outcome.
func CellConfig(cfg flow.Config, run int) flow.Config {
	runCfg := cfg
	runCfg.Seed = cfg.Seed + int64(run)*cellSeedStride
	return runCfg
}

// CellOutcome is the result of executing one grid cell: the completed flow
// result, or the error that terminally failed it (after whatever retrying
// the executor performed).
type CellOutcome struct {
	Res *flow.Result
	Err error
}

// CellExecutor runs dataset-build grid cells on behalf of
// BuildDatasetExec. It receives the build's modules, the cells that
// actually need executing (checkpoint-restored modules are excluded) in
// grid order, and the per-cell flow configuration (cfgs[i] belongs to
// cells[i], with the seed already derived via CellConfig). It must return
// exactly one outcome per requested cell, aligned with the input order. A
// non-nil error aborts the build — every unfinished cell is reported as
// failed with that error, mirroring a cancelled worker pool.
//
// The fleet coordinator (internal/fleet) is the remote implementation;
// LocalExecutor is the in-process reference.
type CellExecutor func(ctx context.Context, mods []*ir.Module, cells []Cell, cfgs []flow.Config) ([]CellOutcome, error)

// BuildDatasetExec is BuildDatasetContext with cell execution delegated to
// exec: the grid enumeration, checkpoint restore, label-run reduction,
// summary accounting and error joining are exactly the local build's, so
// an executor that returns the same per-cell flow results yields a
// byte-identical dataset — the guarantee the distributed build fleet's
// determinism tests pin. A nil exec falls back to the local worker pool.
func BuildDatasetExec(ctx context.Context, mods []*ir.Module, cfg flow.Config, opts BuildOptions, exec CellExecutor) (*dataset.Dataset, []*flow.Result, *BuildSummary, error) {
	return buildDataset(ctx, mods, cfg, opts, exec)
}

// execCells runs the non-restored cells of the grid through a
// CellExecutor and scatters the outcomes back into the module-major cell
// array the reducer consumes, tracing successful results exactly like the
// local pool does on its workers.
func execCells(ctx context.Context, mods []*ir.Module, cfg flow.Config, labelRuns int, done []bool, exec CellExecutor) []runCell {
	grid := make([]runCell, len(mods)*labelRuns)
	var want []Cell
	var cfgs []flow.Config
	for k := range grid {
		mi, run := k/labelRuns, k%labelRuns
		if done[mi] {
			continue
		}
		want = append(want, Cell{Module: mi, Run: run})
		cfgs = append(cfgs, CellConfig(cfg, run))
	}
	outcomes, err := exec(ctx, mods, want, cfgs)
	if err == nil && len(outcomes) != len(want) {
		err = fmt.Errorf("core: cell executor returned %d outcomes for %d cells", len(outcomes), len(want))
	}
	if err != nil {
		// Abort semantics match a cancelled worker pool: every cell that
		// was supposed to run carries the abort cause, and the reducer
		// reports the modules as failed (or the whole build as cancelled
		// when the context is dead).
		for _, c := range want {
			grid[c.Index(labelRuns)].err = err
		}
		return grid
	}
	for i, c := range want {
		k := c.Index(labelRuns)
		o := outcomes[i]
		switch {
		case o.Err != nil:
			grid[k].err = o.Err
		case o.Res == nil:
			grid[k].err = fmt.Errorf("core: cell executor returned no result for module %d run %d", c.Module, c.Run)
		default:
			grid[k].res = o.Res
			grid[k].traced = backtrace.Trace(o.Res)
		}
	}
	return grid
}

// LocalExecutor returns a CellExecutor that runs cells on the in-process
// worker pool with the given concurrency and retry policy — the reference
// implementation remote executors are proven byte-identical against.
func LocalExecutor(workers int, retry flow.RetryPolicy) CellExecutor {
	return func(ctx context.Context, mods []*ir.Module, cells []Cell, cfgs []flow.Config) ([]CellOutcome, error) {
		out := make([]CellOutcome, len(cells))
		perr := parallel.ForEach(ctx, len(cells), workers, func(ctx context.Context, i int) {
			res, err := flow.RunWithRetry(ctx, mods[cells[i].Module], cfgs[i], retry)
			out[i] = CellOutcome{Res: res, Err: err}
		})
		return out, perr
	}
}
