package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/flow"
	"repro/internal/store"
)

// ckBuild runs one resilient build of the tiny module set with checkpointing
// against the given store directory.
func ckBuild(t *testing.T, dir string, workers int) (*dataset.Dataset, []*flow.Result, *BuildSummary, *store.Store) {
	t.Helper()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := BuildOptions{
		LabelRuns:  2,
		Retry:      flow.RetryPolicy{MaxAttempts: 2, SeedStride: 104729},
		Workers:    workers,
		Checkpoint: store.NewCheckpoint(s),
	}
	ds, results, sum, err := BuildDatasetContext(context.Background(), tinyModules(), quickFlow(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds, results, sum, s
}

// TestBuildDatasetCheckpointResume is the crash-recovery reproduction
// contract: a checkpointed build writes one module block per module, a
// rerun against the same store directory restores every module without a
// single flow run, and the restored dataset is byte-identical to both the
// first checkpointed build and an uncheckpointed reference.
func TestBuildDatasetCheckpointResume(t *testing.T) {
	dsRef, _, _ := cacheBuild(t, nil, 1)
	ref := store.EncodeDataset(dsRef)
	dir := t.TempDir()

	dsCold, _, sumCold, sCold := ckBuild(t, dir, 1)
	if sumCold.Restored != 0 {
		t.Fatalf("cold build restored %d modules from an empty store", sumCold.Restored)
	}
	if got := sCold.Len(); got != sumCold.Succeeded {
		t.Fatalf("store holds %d blocks after %d modules", got, sumCold.Succeeded)
	}
	if !bytes.Equal(ref, store.EncodeDataset(dsCold)) {
		t.Fatal("checkpointed build is not byte-identical to the uncheckpointed reference")
	}

	// Resume: a fresh process (new store handle, same directory) restores
	// everything and runs zero flows.
	dsWarm, resWarm, sumWarm, sWarm := ckBuild(t, dir, 1)
	if sumWarm.Restored != sumCold.Succeeded || sumWarm.FlowRuns != 0 {
		t.Fatalf("resume restored %d modules with %d flow runs, want %d and 0",
			sumWarm.Restored, sumWarm.FlowRuns, sumCold.Succeeded)
	}
	if !bytes.Equal(ref, store.EncodeDataset(dsWarm)) {
		t.Fatal("resumed dataset is not byte-identical to the reference")
	}
	for i, r := range resWarm {
		if err := store.VerifyResultKey(r, flow.CacheKey(r.Mod, r.Config)); err != nil {
			t.Fatalf("restored result %d fails verification: %v", i, err)
		}
	}
	if st := sWarm.Stats(); st.Hits == 0 {
		t.Errorf("resume reported no store hits: %+v", st)
	}

	// Partial resume: corrupt one module's block; only that module reruns,
	// and the output is still byte-identical.
	mods := tinyModules()
	sWarm.Corrupt(store.NewCheckpoint(sWarm).ModuleKey(mods[0], quickFlow(), 2),
		fmt.Errorf("test-injected corruption"))
	dsPart, _, sumPart, _ := ckBuild(t, dir, 1)
	if sumPart.Restored != sumCold.Succeeded-1 {
		t.Fatalf("partial resume restored %d modules, want %d", sumPart.Restored, sumCold.Succeeded-1)
	}
	if sumPart.FlowRuns != 2 {
		t.Fatalf("partial resume ran %d flows, want 2 (one module × two label runs)", sumPart.FlowRuns)
	}
	if !bytes.Equal(ref, store.EncodeDataset(dsPart)) {
		t.Fatal("partially resumed dataset is not byte-identical to the reference")
	}
}

// TestBuildDatasetCheckpointParallel shares the checkpoint across a
// parallel build's workers; output must match the sequential reference.
func TestBuildDatasetCheckpointParallel(t *testing.T) {
	dsRef, _, _ := cacheBuild(t, nil, 1)
	ref := store.EncodeDataset(dsRef)
	dir := t.TempDir()
	dsA, _, _, _ := ckBuild(t, dir, 8)
	if !bytes.Equal(ref, store.EncodeDataset(dsA)) {
		t.Fatal("parallel checkpointed build differs from the sequential reference")
	}
	dsB, _, sumB, _ := ckBuild(t, dir, 8)
	if sumB.Restored == 0 {
		t.Error("parallel resume restored nothing")
	}
	if !bytes.Equal(ref, store.EncodeDataset(dsB)) {
		t.Fatal("parallel resumed build differs from the sequential reference")
	}
}
