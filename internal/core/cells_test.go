package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/ir"
)

// TestCellIndexRoundTrip pins the module-major grid layout the executor
// contract depends on: cell k covers module k/labelRuns, run k%labelRuns.
func TestCellIndexRoundTrip(t *testing.T) {
	const labelRuns = 3
	for k := 0; k < 12; k++ {
		c := Cell{Module: k / labelRuns, Run: k % labelRuns}
		if got := c.Index(labelRuns); got != k {
			t.Fatalf("cell %+v: index %d, want %d", c, got, k)
		}
	}
}

// TestCellConfigMatchesLocalSeeds pins the per-run seed derivation shared
// by the local pool and remote executors: base + run*7919, everything else
// untouched.
func TestCellConfigMatchesLocalSeeds(t *testing.T) {
	cfg := quickFlow()
	cfg.Seed = 42
	for run := 0; run < 4; run++ {
		rc := CellConfig(cfg, run)
		if want := int64(42 + run*7919); rc.Seed != want {
			t.Fatalf("run %d: seed %d, want %d", run, rc.Seed, want)
		}
		rc.Seed = cfg.Seed
		if rc != cfg {
			t.Fatalf("run %d: CellConfig changed fields other than Seed", run)
		}
	}
}

// TestBuildDatasetExecLocalEquivalence is the determinism contract the
// distributed fleet builds on: a build whose cells run through a
// CellExecutor (here the in-process LocalExecutor at several widths) is
// byte-identical to BuildDatasetContext — rows, labels, result seeds,
// summary and joined error text — on both the clean and the
// injected-failure path.
func TestBuildDatasetExecLocalEquivalence(t *testing.T) {
	for _, inject := range []bool{false, true} {
		tag := "clean"
		if inject {
			tag = "injected-failure"
		}
		dsSeq, resSeq, sumSeq, errSeq := buildWith(t, 1, inject)
		for _, workers := range []int{1, 4} {
			exec := LocalExecutor(workers, flow.RetryPolicy{MaxAttempts: 2, SeedStride: 104729})
			mods := tinyModules()
			cfg := quickFlow()
			if inject {
				cfg.Faults = faults.ForDesign(mods[0].Name,
					faults.FailFirst(flow.StageRoute, 99, flow.ErrUnroutable))
			}
			opts := BuildOptions{
				LabelRuns: 2,
				Retry:     flow.RetryPolicy{MaxAttempts: 2, SeedStride: 104729},
			}
			dsExec, resExec, sumExec, errExec := BuildDatasetExec(context.Background(), mods, cfg, opts, exec)
			assertSameBuild(t, tag, dsSeq, resSeq, sumSeq, errSeq, dsExec, resExec, sumExec, errExec)
		}
	}
}

// TestBuildDatasetExecAbort pins the abort semantics: an executor-level
// error (transport death, not a per-cell flow failure) fails every module
// that still had cells outstanding, matching a cancelled worker pool.
func TestBuildDatasetExecAbort(t *testing.T) {
	boom := errors.New("coordinator lost")
	exec := CellExecutor(func(ctx context.Context, _ []*ir.Module, cells []Cell, _ []flow.Config) ([]CellOutcome, error) {
		return nil, boom
	})
	_, results, sum, err := BuildDatasetExec(context.Background(), tinyModules(), quickFlow(),
		BuildOptions{LabelRuns: 2}, exec)
	if err == nil || !strings.Contains(err.Error(), "coordinator lost") {
		t.Fatalf("aborted build error = %v, want executor error", err)
	}
	if len(results) != 0 || sum.Succeeded != 0 {
		t.Fatalf("aborted build kept results: %d results, %+v", len(results), sum)
	}
	if len(sum.Failed) != sum.Modules {
		t.Fatalf("aborted build failed %d of %d modules, want all", len(sum.Failed), sum.Modules)
	}
}

// TestBuildDatasetExecShortReturn pins the alignment check: an executor
// returning the wrong number of outcomes is a build-level failure, never a
// silent truncation.
func TestBuildDatasetExecShortReturn(t *testing.T) {
	exec := CellExecutor(func(ctx context.Context, _ []*ir.Module, cells []Cell, _ []flow.Config) ([]CellOutcome, error) {
		return make([]CellOutcome, len(cells)-1), nil
	})
	_, _, _, err := BuildDatasetExec(context.Background(), tinyModules(), quickFlow(),
		BuildOptions{LabelRuns: 2}, exec)
	if err == nil || !strings.Contains(err.Error(), "outcomes") {
		t.Fatalf("short executor return error = %v, want outcome-count error", err)
	}
}
