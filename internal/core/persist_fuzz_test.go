package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ml/lasso"
)

// corpusPredictor hand-assembles a small valid predictor (Lasso weights,
// identity-ish scaler) so the fuzzer starts from an accepted payload
// without training anything.
func corpusPredictor() *Predictor {
	scaler := &ml.Scaler{
		Mean: make([]float64, features.NumFeatures),
		Std:  make([]float64, features.NumFeatures),
	}
	for j := range scaler.Std {
		scaler.Std[j] = 1
	}
	p := &Predictor{Kind: Linear, scaler: scaler, models: make(map[dataset.Target]ml.Regressor)}
	for i, t := range dataset.Targets {
		w := make([]float64, features.NumFeatures)
		w[i] = 0.5
		p.models[t] = &lasso.Model{Alpha: 0.01, Weights: w, Intercept: float64(i)}
	}
	return p
}

// FuzzLoadPredictor feeds arbitrary bytes to the predictor loader:
// corrupted or truncated payloads must produce an error, never a panic,
// and any accepted predictor must survive a predict + save/load round-trip
// with finite outputs.
func FuzzLoadPredictor(f *testing.F) {
	var valid bytes.Buffer
	if err := corpusPredictor().Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":7,"num_features":302}`))
	f.Add([]byte(`{"kind":0,"num_features":302,"scaler":{"Mean":[0],"Std":[0]}}`))
	f.Add(bytes.Replace(valid.Bytes(), []byte("0.5"), []byte("1e999"), 1))
	f.Add(valid.Bytes()[:valid.Len()/2])

	probe := make([]float64, features.NumFeatures)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := LoadPredictor(bytes.NewReader(data))
		if err != nil {
			return
		}
		// An accepted predictor must be fully usable: finite predictions
		// and a clean save/load round-trip.
		v, h, a := p.PredictSample(probe)
		for _, x := range []float64{v, h, a} {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("accepted predictor yields non-finite prediction (%v, %v, %v)", v, h, a)
			}
		}
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatalf("accepted predictor failed to save: %v", err)
		}
		if _, err := LoadPredictor(&buf); err != nil {
			t.Fatalf("round-trip of accepted predictor failed: %v", err)
		}
	})
}
