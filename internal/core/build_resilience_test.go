package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/flow"
)

// TestBuildSkipsFailedModule is acceptance criterion (b): a module whose
// routing keeps failing after every retry surfaces a flow.StageError
// matching flow.ErrUnroutable, while the build still returns the samples
// of the surviving modules.
func TestBuildSkipsFailedModule(t *testing.T) {
	mods := tinyModules()
	victim := mods[0].Name
	cfg := quickFlow()
	cfg.Faults = faults.ForDesign(victim, faults.FailFirst(flow.StageRoute, 99, flow.ErrUnroutable))

	opts := BuildOptions{LabelRuns: 1, Retry: flow.RetryPolicy{MaxAttempts: 2, SeedStride: 1}}
	ds, results, sum, err := BuildDatasetContext(context.Background(), mods, cfg, opts)
	if err == nil {
		t.Fatal("failed module produced no error")
	}
	if !errors.Is(err, flow.ErrUnroutable) {
		t.Fatalf("joined error lost ErrUnroutable: %v", err)
	}
	var se *flow.StageError
	if !errors.As(err, &se) || se.Stage != flow.StageRoute || se.Design != victim {
		t.Fatalf("joined error lost stage context: %v", err)
	}
	if ds == nil || ds.Len() == 0 {
		t.Fatal("surviving module produced no samples")
	}
	for _, s := range ds.Samples {
		if s.Design == victim {
			t.Fatalf("failed module %q leaked samples into the dataset", victim)
		}
	}
	if len(results) != 1 || results[0].Mod.Name != mods[1].Name {
		t.Fatalf("results should hold only the surviving module, got %d", len(results))
	}
	if sum.Modules != 2 || sum.Succeeded != 1 || len(sum.Failed) != 1 || sum.Failed[0].Module != victim {
		t.Fatalf("bad summary: %+v", sum)
	}
	if !strings.Contains(sum.Format(), victim) {
		t.Fatalf("summary does not name the skipped module: %q", sum.Format())
	}
}

func TestBuildRetryRecoversInjectedFailure(t *testing.T) {
	mods := tinyModules()[:1]
	cfg := quickFlow()
	cfg.Faults = faults.FailFirst(flow.StageRoute, 1, flow.ErrUnroutable)

	opts := BuildOptions{LabelRuns: 1, Retry: flow.RetryPolicy{MaxAttempts: 2, SeedStride: 104729}}
	ds, results, sum, err := BuildDatasetContext(context.Background(), mods, cfg, opts)
	if err != nil {
		t.Fatalf("retry did not recover the build: %v", err)
	}
	if ds.Len() == 0 || len(results) != 1 {
		t.Fatal("recovered build returned no data")
	}
	if sum.Succeeded != 1 || len(sum.Failed) != 0 {
		t.Fatalf("bad summary: %+v", sum)
	}
	if got := results[0].Config.Attempt; got != 1 {
		t.Fatalf("succeeded on attempt %d, want 1 (re-rolled seed)", got)
	}
}

func TestBuildCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := BuildDatasetContext(ctx, tinyModules(), quickFlow(), BuildOptions{LabelRuns: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestBuildWithoutFaultsMatchesLegacyPath(t *testing.T) {
	ds, results, err := BuildDatasetRuns(tinyModules()[:1], quickFlow(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 || len(results) != 1 {
		t.Fatal("legacy wrapper returned no data")
	}
}
