package core

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/flow"
)

// buildWith runs one resilient build of the tiny module set with the given
// worker count, with one module failing deterministically so the error
// path is part of the comparison.
func buildWith(t *testing.T, workers int, inject bool) (*dataset.Dataset, []*flow.Result, *BuildSummary, error) {
	t.Helper()
	mods := tinyModules()
	cfg := quickFlow()
	if inject {
		cfg.Faults = faults.ForDesign(mods[0].Name,
			faults.FailFirst(flow.StageRoute, 99, flow.ErrUnroutable))
	}
	opts := BuildOptions{
		LabelRuns: 2,
		Retry:     flow.RetryPolicy{MaxAttempts: 2, SeedStride: 104729},
		Workers:   workers,
	}
	return BuildDatasetContext(context.Background(), mods, cfg, opts)
}

// assertSameBuild asserts two builds are byte-identical: every sample's
// features and labels, the summary counts, and the joined error text.
func assertSameBuild(t *testing.T, tag string,
	dsA *dataset.Dataset, resA []*flow.Result, sumA *BuildSummary, errA error,
	dsB *dataset.Dataset, resB []*flow.Result, sumB *BuildSummary, errB error) {
	t.Helper()
	if dsA.Len() != dsB.Len() {
		t.Fatalf("%s: sample counts differ: %d vs %d", tag, dsA.Len(), dsB.Len())
	}
	for i := range dsA.Samples {
		a, b := dsA.Samples[i], dsB.Samples[i]
		if a.Design != b.Design || a.OpID != b.OpID || a.Kind != b.Kind {
			t.Fatalf("%s: row %d identity differs: %s/%d vs %s/%d", tag, i, a.Design, a.OpID, b.Design, b.OpID)
		}
		if a.VertPct != b.VertPct || a.HorizPct != b.HorizPct || a.AvgPct != b.AvgPct {
			t.Fatalf("%s: row %d labels differ: (%v %v %v) vs (%v %v %v)",
				tag, i, a.VertPct, a.HorizPct, a.AvgPct, b.VertPct, b.HorizPct, b.AvgPct)
		}
		if a.Margin != b.Margin || a.Replica != b.Replica || a.ReplicaRoot != b.ReplicaRoot {
			t.Fatalf("%s: row %d flags differ", tag, i)
		}
		if len(a.Features) != len(b.Features) {
			t.Fatalf("%s: row %d feature widths differ", tag, i)
		}
		for j := range a.Features {
			if a.Features[j] != b.Features[j] {
				t.Fatalf("%s: row %d feature %d differs: %v vs %v", tag, i, j, a.Features[j], b.Features[j])
			}
		}
	}
	if len(resA) != len(resB) {
		t.Fatalf("%s: result counts differ: %d vs %d", tag, len(resA), len(resB))
	}
	for i := range resA {
		if resA[i].Mod.Name != resB[i].Mod.Name || resA[i].Config.Seed != resB[i].Config.Seed ||
			resA[i].Config.Attempt != resB[i].Config.Attempt {
			t.Fatalf("%s: result %d differs: %s seed=%d vs %s seed=%d", tag, i,
				resA[i].Mod.Name, resA[i].Config.Seed, resB[i].Mod.Name, resB[i].Config.Seed)
		}
	}
	if sumA.Modules != sumB.Modules || sumA.Succeeded != sumB.Succeeded ||
		sumA.FlowRuns != sumB.FlowRuns || len(sumA.Failed) != len(sumB.Failed) {
		t.Fatalf("%s: summaries differ: %+v vs %+v", tag, sumA, sumB)
	}
	if sumA.Format() != sumB.Format() {
		t.Fatalf("%s: summary text differs:\n%s\nvs\n%s", tag, sumA.Format(), sumB.Format())
	}
	textA, textB := "", ""
	if errA != nil {
		textA = errA.Error()
	}
	if errB != nil {
		textB = errB.Error()
	}
	if textA != textB {
		t.Fatalf("%s: joined error text differs:\n%q\nvs\n%q", tag, textA, textB)
	}
}

// TestBuildDatasetDeterministicAcrossWorkers is the reproduction
// contract of the parallel execution layer (acceptance criterion of the
// parallelism PR): a dataset built with Workers=8 is byte-identical to the
// sequential Workers=1 build — rows, labels, per-result seeds, summary
// counts and the joined error text — both on the clean path and with a
// module failing under fault injection.
func TestBuildDatasetDeterministicAcrossWorkers(t *testing.T) {
	for _, inject := range []bool{false, true} {
		tag := "clean"
		if inject {
			tag = "injected-failure"
		}
		dsSeq, resSeq, sumSeq, errSeq := buildWith(t, 1, inject)
		if inject && errSeq == nil {
			t.Fatalf("%s: injected failure produced no error", tag)
		}
		if !inject && errSeq != nil {
			t.Fatalf("%s: clean build failed: %v", tag, errSeq)
		}
		for _, workers := range []int{8, 0} {
			dsPar, resPar, sumPar, errPar := buildWith(t, workers, inject)
			assertSameBuild(t, tag, dsSeq, resSeq, sumSeq, errSeq, dsPar, resPar, sumPar, errPar)
		}
	}
}

// TestBuildDatasetParallelCancellation exercises the pool's cancellation
// path: a pre-cancelled context aborts the parallel build with
// context.Canceled before any flow run output is kept.
func TestBuildDatasetParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, results, sum, err := BuildDatasetContext(ctx, tinyModules(), quickFlow(),
		BuildOptions{LabelRuns: 2, Workers: 8})
	if err == nil || ctx.Err() == nil {
		t.Fatal("cancelled parallel build returned no error")
	}
	if len(results) != 0 || sum.Succeeded != 0 {
		t.Fatalf("cancelled build kept results: %d results, %+v", len(results), sum)
	}
}
