package core

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/flow"
	"repro/internal/flowcache"
)

// cacheBuild runs one resilient build of the tiny module set with the given
// cache and worker count.
func cacheBuild(t *testing.T, cache flow.Cache, workers int) (ds *dataset.Dataset, results []*flow.Result, sum *BuildSummary) {
	t.Helper()
	cfg := quickFlow()
	cfg.Cache = cache
	opts := BuildOptions{
		LabelRuns: 2,
		Retry:     flow.RetryPolicy{MaxAttempts: 2, SeedStride: 104729},
		Workers:   workers,
	}
	ds, results, sum, err := BuildDatasetContext(context.Background(), tinyModules(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds, results, sum
}

// TestBuildDatasetFlowCache is the flow-cache reproduction contract: a build
// with a cold cache is byte-identical to an uncached build, and rebuilding
// the same dataset against the warm cache serves every flow run as a hit —
// again byte-identical.
func TestBuildDatasetFlowCache(t *testing.T) {
	dsRef, resRef, sumRef := cacheBuild(t, nil, 1)

	cache := flowcache.New(0)
	dsCold, resCold, sumCold := cacheBuild(t, cache, 1)
	assertSameBuild(t, "cold-cache", dsRef, resRef, sumRef, nil, dsCold, resCold, sumCold, nil)
	cold := cache.Stats()
	if cold.Puts == 0 {
		t.Fatal("cold build stored nothing in the cache")
	}

	dsWarm, resWarm, sumWarm := cacheBuild(t, cache, 1)
	assertSameBuild(t, "warm-cache", dsRef, resRef, sumRef, nil, dsWarm, resWarm, sumWarm, nil)
	warm := cache.Stats()
	hits := warm.Hits - cold.Hits
	if hits == 0 {
		t.Fatal("warm rebuild hit the cache zero times")
	}
	if int(hits) != sumWarm.FlowRuns {
		t.Errorf("warm rebuild hit %d of %d flow runs; every run should be memoized",
			hits, sumWarm.FlowRuns)
	}
	if warm.Puts != cold.Puts {
		t.Errorf("warm rebuild re-stored results (puts %d -> %d)", cold.Puts, warm.Puts)
	}
}

// TestBuildDatasetFlowCacheParallel shares one cache across a parallel
// build's workers (the concurrency contract of flow.Cache) and checks the
// result still matches the sequential uncached reference. Run under -race
// in tier 1.
func TestBuildDatasetFlowCacheParallel(t *testing.T) {
	dsRef, resRef, sumRef := cacheBuild(t, nil, 1)
	cache := flowcache.New(0)
	dsA, resA, sumA := cacheBuild(t, cache, 8)
	assertSameBuild(t, "parallel-cold", dsRef, resRef, sumRef, nil, dsA, resA, sumA, nil)
	dsB, resB, sumB := cacheBuild(t, cache, 8)
	assertSameBuild(t, "parallel-warm", dsRef, resRef, sumRef, nil, dsB, resB, sumB, nil)
	if s := cache.Stats(); s.Hits == 0 {
		t.Error("parallel warm rebuild never hit the shared cache")
	}
}
