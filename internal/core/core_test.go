package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/flow"
	"repro/internal/ir"
	"repro/internal/ml"
)

// tinyModules builds two small designs with distinct congestion profiles,
// fast enough for unit tests.
func tinyModules() []*ir.Module {
	build := func(name string, lanes, width int) *ir.Module {
		m := ir.NewModule(name)
		b := ir.NewBuilder(m.NewFunction(name+"_top")).At(name+".cpp", 1)
		p := b.Port("p", 32)
		a := b.Array("mem", 64, 16, 8)
		var outs []*ir.Op
		for i := 0; i < lanes; i++ {
			b.Line(10 + i)
			v := b.Load(a, nil)
			x := b.OpBits(ir.KindBitSel, width, p, width)
			outs = append(outs, b.Op(ir.KindMul, 16, v, x))
		}
		b.Line(60)
		b.Ret(b.ReduceTree(ir.KindAdd, 16, outs))
		return m
	}
	return []*ir.Module{build("tiny_a", 16, 16), build("tiny_b", 28, 8)}
}

func quickFlow() flow.Config {
	cfg := flow.DefaultConfig()
	cfg.Place.Moves = 3000
	return cfg
}

func TestModelKindString(t *testing.T) {
	if Linear.String() != "Linear" || ANN.String() != "ANN" || GBRT.String() != "GBRT" {
		t.Error("model names wrong")
	}
	if ModelKind(9).String() != "?" {
		t.Error("unknown kind must print ?")
	}
	if len(ModelKinds) != 3 {
		t.Error("ModelKinds must list three models")
	}
}

func TestNewModelKinds(t *testing.T) {
	for _, k := range ModelKinds {
		if m := NewModel(k, 1); m == nil {
			t.Fatalf("NewModel(%v) = nil", k)
		}
		if m := NewModelSized(k, 1, SizeQuick); m == nil {
			t.Fatalf("NewModelSized(%v, quick) = nil", k)
		}
	}
}

func TestNewModelPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown model kind did not panic")
		}
	}()
	NewModel(ModelKind(42), 1)
}

func TestBuildDatasetShape(t *testing.T) {
	mods := tinyModules()
	ds, results, err := BuildDataset(mods, quickFlow())
	if err != nil {
		t.Fatal(err)
	}
	wantSamples := 0
	for _, m := range mods {
		wantSamples += m.NumOps()
	}
	if ds.Len() != wantSamples {
		t.Fatalf("dataset has %d samples, want %d", ds.Len(), wantSamples)
	}
	if len(results) != len(mods) {
		t.Fatalf("results = %d", len(results))
	}
	designs := make(map[string]int)
	for _, s := range ds.Samples {
		designs[s.Design]++
		if len(s.Features) != len(ds.FeatureNames) {
			t.Fatal("feature width mismatch")
		}
		for _, v := range s.Features {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite feature")
			}
		}
	}
	if len(designs) != 2 {
		t.Fatalf("designs = %v", designs)
	}
}

func TestBuildDatasetLabelsAreSeedAveraged(t *testing.T) {
	mods := tinyModules()[:1]
	cfg := quickFlow()
	ds, _, err := BuildDataset(mods, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Averaged labels must differ from any single-seed run for at least
	// some ops (placement is stochastic).
	single, err := flow.Run(mods[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = single
	varying := 0
	for _, s := range ds.Samples {
		if s.VertPct != s.HorizPct {
			varying++
		}
	}
	if varying == 0 {
		t.Error("labels look degenerate")
	}
}

func TestTrainAndPredictModule(t *testing.T) {
	mods := tinyModules()
	cfg := quickFlow()
	ds, _, err := BuildDataset(mods, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Train(ds, TrainOptions{Kind: Linear, Filter: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Model(dataset.Vertical) == nil || pred.Model(dataset.Average) == nil {
		t.Fatal("missing per-target models")
	}
	// Prediction runs WITHOUT place and route.
	preds, err := pred.PredictModule(tinyModules()[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != tinyModules()[0].NumOps() {
		t.Fatalf("predictions = %d", len(preds))
	}
	for _, p := range preds {
		if math.IsNaN(p.VertPct) || math.IsNaN(p.HorizPct) || math.IsNaN(p.AvgPct) {
			t.Fatal("NaN prediction")
		}
	}
	hs := Hotspots(preds)
	if len(hs) == 0 {
		t.Fatal("no hotspots")
	}
	for i := 1; i < len(hs); i++ {
		if hs[i-1].MaxAvg < hs[i].MaxAvg {
			t.Fatal("hotspots not sorted")
		}
	}
}

func TestTrainEmptyDatasetFails(t *testing.T) {
	if _, err := Train(dataset.New(), TrainOptions{Kind: Linear}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestEvaluateProtocol(t *testing.T) {
	ds, _, err := BuildDataset(tinyModules(), quickFlow())
	if err != nil {
		t.Fatal(err)
	}
	row, err := EvaluateSized(ds, Linear, false, 7, SizeQuick)
	if err != nil {
		t.Fatal(err)
	}
	if row.Kind != Linear || row.Filtered {
		t.Error("row metadata wrong")
	}
	for _, tg := range dataset.Targets {
		acc, ok := row.Acc[tg]
		if !ok {
			t.Fatalf("missing accuracy for %v", tg)
		}
		if acc.MAE < 0 || acc.MedAE < 0 {
			t.Fatal("negative error")
		}
		if acc.MedAE > acc.MAE*3 {
			t.Errorf("%v: MedAE %v wildly above MAE %v", tg, acc.MedAE, acc.MAE)
		}
	}
	// Filtering variant runs too.
	if _, err := EvaluateSized(ds, GBRT, true, 7, SizeQuick); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateBeatsPredictingTheMean(t *testing.T) {
	ds, _, err := BuildDataset(tinyModules(), quickFlow())
	if err != nil {
		t.Fatal(err)
	}
	row, err := EvaluateSized(ds, GBRT, false, 3, SizeQuick)
	if err != nil {
		t.Fatal(err)
	}
	// Mean-prediction baseline on the same data.
	_, y := ds.Matrix(dataset.Vertical)
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	base := make([]float64, len(y))
	for i := range base {
		base[i] = mean
	}
	baseMAE := ml.MAE(y, base)
	if row.Acc[dataset.Vertical].MAE >= baseMAE {
		t.Errorf("GBRT MAE %v no better than mean baseline %v",
			row.Acc[dataset.Vertical].MAE, baseMAE)
	}
}

func TestPredictSampleConsistentWithModels(t *testing.T) {
	ds, _, err := BuildDataset(tinyModules(), quickFlow())
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Train(ds, TrainOptions{Kind: Linear, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Samples[0]
	v, h, a := pred.PredictSample(s.Features)
	if math.IsNaN(v) || math.IsNaN(h) || math.IsNaN(a) {
		t.Fatal("NaN from PredictSample")
	}
}

func TestFactoryAndTuningGrid(t *testing.T) {
	X := [][]float64{{0, 1}, {1, 0}, {0.5, 0.5}, {1, 1}, {0, 0}, {0.2, 0.8}}
	y := []float64{1, 2, 3, 4, 5, 6}
	for _, kind := range ModelKinds {
		factory := Factory(kind, 1)
		for _, quick := range []bool{true, false} {
			grid := TuningGrid(kind, quick)
			cands := grid.Enumerate()
			if len(cands) == 0 {
				t.Fatalf("%v quick=%v: empty grid", kind, quick)
			}
			// Build and fit the first candidate to prove the params are
			// wired through.
			m := factory(cands[0])
			if m == nil {
				t.Fatalf("%v: nil model", kind)
			}
			if kind != ANN { // the ANN candidate is too slow to fit here
				if err := m.Fit(X, y); err != nil {
					t.Fatalf("%v: fit: %v", kind, err)
				}
				_ = m.Predict(X[0])
			}
		}
	}
}

func TestEvaluateWrapperDelegates(t *testing.T) {
	ds, _, err := BuildDataset(tinyModules()[:1], quickFlow())
	if err != nil {
		t.Fatal(err)
	}
	row, err := Evaluate(ds, Linear, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	if row.Kind != Linear || len(row.Acc) != 3 {
		t.Fatalf("row malformed: %+v", row)
	}
}
