package core

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// TestBuildDatasetObservability: an observed build records one
// "dataset.build" root, one "module.run" span per (module, label-run) cell
// parented on it, and the build counters.
func TestBuildDatasetObservability(t *testing.T) {
	o := obs.New()
	mods := tinyModules()
	cfg := quickFlow()
	cfg.Obs = o
	const labelRuns = 2
	ds, _, sum, err := BuildDatasetContext(context.Background(), mods, cfg,
		BuildOptions{LabelRuns: labelRuns, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 || sum.Succeeded != len(mods) {
		t.Fatalf("build incomplete: %d samples, %d succeeded", ds.Len(), sum.Succeeded)
	}

	var build *obs.SpanData
	moduleRuns := 0
	for _, s := range o.Trace.Spans() {
		s := s
		switch s.Name {
		case "dataset.build":
			build = &s
		case "module.run":
			moduleRuns++
		}
	}
	if build == nil {
		t.Fatal("no dataset.build span")
	}
	if want := len(mods) * labelRuns; moduleRuns != want {
		t.Errorf("module.run spans = %d, want %d", moduleRuns, want)
	}
	for _, s := range o.Trace.Spans() {
		if s.Name == "module.run" && s.ParentID != build.ID {
			t.Errorf("module.run span not parented on dataset.build")
		}
	}

	snap := o.Reg.Snapshot()
	if v, _ := snap.Counter(obs.MetricBuildFlowRuns); v != int64(sum.FlowRuns) {
		t.Errorf("build.flow_runs=%d, want %d", v, sum.FlowRuns)
	}
	if h := snap.Histogram(obs.MetricBuildRunMs); h == nil || h.Count != int64(len(mods)*labelRuns) {
		t.Errorf("build run histogram wrong: %+v", h)
	}
}

// TestBuildDatasetObserverInert: the observer must not change what the
// build produces — same rows, labels and summary as the bare build.
func TestBuildDatasetObserverInert(t *testing.T) {
	mods := tinyModules()
	opts := BuildOptions{LabelRuns: 1, Workers: 2}
	bare, _, sumBare, err := BuildDatasetContext(context.Background(), mods, quickFlow(), opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickFlow()
	cfg.Obs = obs.New()
	seen, _, sumSeen, err := BuildDatasetContext(context.Background(), mods, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Len() != seen.Len() || sumBare.FlowRuns != sumSeen.FlowRuns {
		t.Fatalf("observed build diverged: %d/%d samples, %d/%d runs",
			bare.Len(), seen.Len(), sumBare.FlowRuns, sumSeen.FlowRuns)
	}
	for i := 0; i < bare.Len(); i++ {
		a, b := bare.Samples[i], seen.Samples[i]
		if a.VertPct != b.VertPct || a.HorizPct != b.HorizPct {
			t.Fatalf("sample %d labels diverged", i)
		}
	}
}
