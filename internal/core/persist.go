package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ml/ann"
	"repro/internal/ml/gbrt"
	"repro/internal/ml/lasso"
)

// predictorJSON is the persisted form of a trained predictor: the model
// kind, the feature scaler and one serialized regressor per congestion
// target. The feature count is stored so stale models fail loudly when the
// feature layout evolves.
type predictorJSON struct {
	Kind        ModelKind                  `json:"kind"`
	NumFeatures int                        `json:"num_features"`
	Scaler      *ml.Scaler                 `json:"scaler"`
	Models      map[string]json.RawMessage `json:"models"`
}

// Save serializes the trained predictor as JSON.
func (p *Predictor) Save(w io.Writer) error {
	out := predictorJSON{
		Kind:        p.Kind,
		NumFeatures: features.NumFeatures,
		Scaler:      p.scaler,
		Models:      make(map[string]json.RawMessage, len(p.models)),
	}
	for _, t := range dataset.Targets {
		m, ok := p.models[t]
		if !ok {
			return fmt.Errorf("core: save: predictor missing model for %s", t)
		}
		raw, err := json.Marshal(m)
		if err != nil {
			return fmt.Errorf("core: save %s: %w", t, err)
		}
		out.Models[t.String()] = raw
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// LoadPredictor restores a predictor saved with Save. The decoded payload
// is validated before it is returned — unknown model kinds, a wrong or
// missing feature scaler, non-finite weights and structurally broken
// models all fail here with a descriptive error instead of panicking (or
// silently predicting garbage) later at predict time.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var in predictorJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: load predictor: %w", err)
	}
	known := false
	for _, k := range ModelKinds {
		if in.Kind == k {
			known = true
		}
	}
	if !known {
		return nil, fmt.Errorf("core: load predictor: unknown model kind %d", int(in.Kind))
	}
	if in.NumFeatures != features.NumFeatures {
		return nil, fmt.Errorf("core: load predictor: model was trained on %d features, library has %d",
			in.NumFeatures, features.NumFeatures)
	}
	if err := validScaler(in.Scaler); err != nil {
		return nil, fmt.Errorf("core: load predictor: %w", err)
	}
	p := &Predictor{Kind: in.Kind, scaler: in.Scaler, models: make(map[dataset.Target]ml.Regressor)}
	for _, t := range dataset.Targets {
		raw, ok := in.Models[t.String()]
		if !ok {
			return nil, fmt.Errorf("core: load predictor: missing model for %s", t)
		}
		var m ml.Regressor
		switch in.Kind {
		case Linear:
			m = &lasso.Model{}
		case ANN:
			m = &ann.Model{}
		case GBRT:
			m = &gbrt.Model{}
		}
		if err := json.Unmarshal(raw, m); err != nil {
			return nil, fmt.Errorf("core: load predictor %s: %w", t, err)
		}
		p.models[t] = m
	}
	if err := p.probe(); err != nil {
		return nil, fmt.Errorf("core: load predictor: %w", err)
	}
	return p, nil
}

// LoadPredictorFile restores a predictor from a file saved with Save.
// It is the one validated load path the server's startup and hot-reload
// share: the artifact is fully decoded, validated and probed before the
// file handle is released, so a caller holding the returned predictor
// never observes a half-loaded model.
func LoadPredictorFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load predictor: %w", err)
	}
	defer f.Close()
	p, err := LoadPredictor(f)
	if err != nil {
		return nil, fmt.Errorf("core: load predictor %s: %w", path, err)
	}
	return p, nil
}

// validScaler rejects scalers that would corrupt or crash prediction:
// wrong vector lengths, non-finite statistics.
func validScaler(s *ml.Scaler) error {
	if s == nil {
		return fmt.Errorf("missing scaler")
	}
	if len(s.Mean) != features.NumFeatures || len(s.Std) != features.NumFeatures {
		return fmt.Errorf("scaler has %d/%d statistics, want %d", len(s.Mean), len(s.Std), features.NumFeatures)
	}
	for j := range s.Mean {
		if !finite(s.Mean[j]) || !finite(s.Std[j]) {
			return fmt.Errorf("scaler statistic %d is not finite", j)
		}
	}
	return nil
}

// probe runs one prediction on a zero feature vector. A corrupt model —
// truncated tree arrays, mismatched layer shapes, NaN weights — either
// panics (recovered here) or yields a non-finite estimate; both become
// load-time errors.
func (p *Predictor) probe() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("model probe panicked (corrupt payload): %v", r)
		}
	}()
	v, h, a := p.PredictSample(make([]float64, features.NumFeatures))
	if !finite(v) || !finite(h) || !finite(a) {
		return fmt.Errorf("model probe produced non-finite prediction (V=%v H=%v Avg=%v)", v, h, a)
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
