package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ml/ann"
	"repro/internal/ml/gbrt"
	"repro/internal/ml/lasso"
)

// predictorJSON is the persisted form of a trained predictor: the model
// kind, the feature scaler and one serialized regressor per congestion
// target. The feature count is stored so stale models fail loudly when the
// feature layout evolves.
type predictorJSON struct {
	Kind        ModelKind                  `json:"kind"`
	NumFeatures int                        `json:"num_features"`
	Scaler      *ml.Scaler                 `json:"scaler"`
	Models      map[string]json.RawMessage `json:"models"`
}

// Save serializes the trained predictor as JSON.
func (p *Predictor) Save(w io.Writer) error {
	out := predictorJSON{
		Kind:        p.Kind,
		NumFeatures: features.NumFeatures,
		Scaler:      p.scaler,
		Models:      make(map[string]json.RawMessage, len(p.models)),
	}
	for _, t := range dataset.Targets {
		m, ok := p.models[t]
		if !ok {
			return fmt.Errorf("core: save: predictor missing model for %s", t)
		}
		raw, err := json.Marshal(m)
		if err != nil {
			return fmt.Errorf("core: save %s: %w", t, err)
		}
		out.Models[t.String()] = raw
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// LoadPredictor restores a predictor saved with Save.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var in predictorJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: load predictor: %w", err)
	}
	if in.NumFeatures != features.NumFeatures {
		return nil, fmt.Errorf("core: load predictor: model was trained on %d features, library has %d",
			in.NumFeatures, features.NumFeatures)
	}
	if in.Scaler == nil {
		return nil, fmt.Errorf("core: load predictor: missing scaler")
	}
	p := &Predictor{Kind: in.Kind, scaler: in.Scaler, models: make(map[dataset.Target]ml.Regressor)}
	for _, t := range dataset.Targets {
		raw, ok := in.Models[t.String()]
		if !ok {
			return nil, fmt.Errorf("core: load predictor: missing model for %s", t)
		}
		var m ml.Regressor
		switch in.Kind {
		case Linear:
			m = &lasso.Model{}
		case ANN:
			m = &ann.Model{}
		case GBRT:
			m = &gbrt.Model{}
		default:
			return nil, fmt.Errorf("core: load predictor: unknown model kind %d", int(in.Kind))
		}
		if err := json.Unmarshal(raw, m); err != nil {
			return nil, fmt.Errorf("core: load predictor %s: %w", t, err)
		}
		p.models[t] = m
	}
	return p, nil
}
