// Package core ties the whole reproduction together: it is the paper's
// primary contribution as a library. The pipeline runs training designs
// through the synthetic C-to-FPGA flow once, back-traces per-CLB congestion
// onto IR operations, extracts the 302 features, trains the regression
// models (Lasso / ANN / GBRT), and then predicts routing congestion for new
// designs *without* running placement and routing — locating the congested
// regions of the source code during HLS.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backtrace"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/flow"
	"repro/internal/graph"
	"repro/internal/hls"
	"repro/internal/ir"
	"repro/internal/ml"
	"repro/internal/ml/ann"
	"repro/internal/ml/gbrt"
	"repro/internal/ml/lasso"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/store"
)

// ModelKind selects one of the paper's three regression models.
type ModelKind int

const (
	// Linear is the Lasso linear model.
	Linear ModelKind = iota
	// ANN is the multilayer-perceptron regressor.
	ANN
	// GBRT is the gradient-boosted regression tree ensemble, the paper's
	// best model.
	GBRT
)

func (k ModelKind) String() string {
	switch k {
	case Linear:
		return "Linear"
	case ANN:
		return "ANN"
	case GBRT:
		return "GBRT"
	}
	return "?"
}

// ModelKinds lists the three models in Table IV order.
var ModelKinds = []ModelKind{Linear, ANN, GBRT}

// ModelSize selects the effort level of a model build: SizeFull is the
// published configuration, SizeQuick a shrunken variant for unit tests.
type ModelSize int

const (
	// SizeFull is the grid-search-tuned configuration the tables use.
	SizeFull ModelSize = iota
	// SizeQuick trades accuracy for speed (tests, smoke runs).
	SizeQuick
)

// NewModel builds a fresh regressor of the given kind with the tuned
// hyperparameters the experiments use (the values a grid search with
// 10-fold cross-validation selects; see ml.GridSearchCV for the machinery).
func NewModel(kind ModelKind, seed int64) ml.Regressor {
	return NewModelSized(kind, seed, SizeFull)
}

// NewModelSized builds a regressor at the requested effort level.
func NewModelSized(kind ModelKind, seed int64, size ModelSize) ml.Regressor {
	switch kind {
	case Linear:
		m := lasso.New(0.01)
		if size == SizeQuick {
			m.MaxIter = 100
		}
		return m
	case ANN:
		m := ann.New([]int{128, 64}, seed)
		m.Epochs = 60
		m.BatchSize = 32
		m.LR = 1e-3
		m.L2 = 1e-4
		m.NormalizeTarget = true
		m.HuberDelta = 0.5
		if size == SizeQuick {
			m.Hidden = []int{16}
			m.Epochs = 8
		}
		return m
	case GBRT:
		m := gbrt.New(200, 0.08, seed)
		m.MaxDepth = 5
		m.MinSamplesLeaf = 8
		m.Subsample = 0.8
		if size == SizeQuick {
			m.NumTrees = 25
			m.MaxDepth = 4
		}
		return m
	}
	panic(fmt.Sprintf("core: unknown model kind %d", int(kind)))
}

// Factory returns a grid-search factory for the model kind: each candidate
// hyperparameter assignment (see TuningGrid) builds a fresh regressor. The
// paper tunes each model this way with 10-fold cross-validation.
func Factory(kind ModelKind, seed int64) ml.Factory {
	switch kind {
	case Linear:
		return func(p ml.Params) ml.Regressor {
			return lasso.New(p["alpha"])
		}
	case ANN:
		return func(p ml.Params) ml.Regressor {
			hidden := []int{int(p["hidden"])}
			if p["hidden2"] > 0 {
				hidden = append(hidden, int(p["hidden2"]))
			}
			m := ann.New(hidden, seed)
			if p["epochs"] > 0 {
				m.Epochs = int(p["epochs"])
			}
			if p["lr"] > 0 {
				m.LR = p["lr"]
			}
			return m
		}
	case GBRT:
		return func(p ml.Params) ml.Regressor {
			m := gbrt.New(int(p["trees"]), p["lr"], seed)
			if p["depth"] > 0 {
				m.MaxDepth = int(p["depth"])
			}
			return m
		}
	}
	panic(fmt.Sprintf("core: unknown model kind %d", int(kind)))
}

// TuningGrid returns the hyperparameter grid the paper-style search
// explores for each model. Quick mode shrinks the grid for tests.
func TuningGrid(kind ModelKind, quick bool) ml.Grid {
	switch kind {
	case Linear:
		if quick {
			return ml.Grid{"alpha": {0.01, 0.1}}
		}
		return ml.Grid{"alpha": {0.001, 0.01, 0.1, 1.0}}
	case ANN:
		if quick {
			return ml.Grid{"hidden": {16}, "epochs": {6}, "lr": {2e-3}}
		}
		return ml.Grid{"hidden": {32, 64}, "hidden2": {0, 32}, "epochs": {40}, "lr": {1e-3, 2e-3}}
	case GBRT:
		if quick {
			return ml.Grid{"trees": {20}, "lr": {0.1}, "depth": {3, 4}}
		}
		return ml.Grid{"trees": {100, 200}, "lr": {0.05, 0.08, 0.12}, "depth": {4, 5}}
	}
	panic(fmt.Sprintf("core: unknown model kind %d", int(kind)))
}

// LabelRuns is the number of placement seeds whose congestion labels are
// averaged per operation when building the training dataset. The simulated
// annealer is stochastic where Vivado is deterministic, so a single run's
// label carries placement noise that no HLS-side feature could ever
// explain; averaging defines the target as the operation's *expected*
// congestion, the quantity a pre-PAR predictor can meaningfully estimate.
const LabelRuns = 3

// BuildOptions tunes a resilient dataset build.
type BuildOptions struct {
	// LabelRuns is the number of placement seeds averaged per label;
	// values below 1 mean 1.
	LabelRuns int
	// Retry governs per-flow-run retries with escalation. The zero value
	// disables retrying (single attempt per run).
	Retry flow.RetryPolicy
	// Workers bounds how many flow runs execute concurrently. Zero (the
	// default) uses runtime.GOMAXPROCS(0); 1 forces the sequential
	// reference execution. Whatever the value, the build is deterministic:
	// every run derives its placement seed from Config.Seed and its
	// (module, label-run) position alone, and results are reduced in index
	// order, so the dataset, summary and joined error are byte-identical
	// across worker counts.
	Workers int
	// Checkpoint, when non-nil, persists each completed module's samples
	// and first flow result to the artifact store and restores them on the
	// next build with the same (module, config, label-run count) — a build
	// killed mid-sweep resumes instead of recomputing. Restored samples
	// are byte-identical to recomputed ones (the codec stores raw float
	// bits and the build is deterministic), so checkpointing never changes
	// the dataset. Checkpoint failures degrade to recompute.
	Checkpoint *store.Checkpoint
}

// ModuleFailure records one module the dataset build had to skip.
type ModuleFailure struct {
	Module string
	Err    error
}

// BuildSummary reports what a dataset build actually did: how many
// modules survived, which failed and why, and how much retrying it took.
type BuildSummary struct {
	Modules   int
	Succeeded int
	Failed    []ModuleFailure
	// FlowRuns counts successful flow executions (label runs included).
	FlowRuns int
	// Restored counts modules recovered from the build checkpoint instead
	// of executed (their label runs are not in FlowRuns).
	Restored int
}

// Format renders the summary as a short human-readable report.
func (s *BuildSummary) Format() string {
	out := fmt.Sprintf("dataset build: %d/%d modules, %d flow runs", s.Succeeded, s.Modules, s.FlowRuns)
	if s.Restored > 0 {
		out += fmt.Sprintf(" (%d modules restored from checkpoint)", s.Restored)
	}
	for _, f := range s.Failed {
		out += fmt.Sprintf("\n  skipped %q: %v", f.Module, f.Err)
	}
	return out + "\n"
}

// Err joins the per-module failures (nil when every module succeeded).
func (s *BuildSummary) Err() error { return errors.Join(errList(s)...) }

// BuildDataset runs the complete implementation flow on every module,
// back-traces congestion labels (averaged over LabelRuns placement seeds),
// extracts features and assembles the combined dataset — the training
// phase of Fig. 2. The returned flow results are the first run per module.
func BuildDataset(mods []*ir.Module, cfg flow.Config) (*dataset.Dataset, []*flow.Result, error) {
	return BuildDatasetRuns(mods, cfg, LabelRuns)
}

// BuildDatasetRuns is BuildDataset with an explicit number of label-
// averaging placement runs; the ablation experiments use it to quantify
// what the averaging buys.
func BuildDatasetRuns(mods []*ir.Module, cfg flow.Config, labelRuns int) (*dataset.Dataset, []*flow.Result, error) {
	ds, results, _, err := BuildDatasetContext(context.Background(), mods, cfg, BuildOptions{LabelRuns: labelRuns})
	return ds, results, err
}

// BuildDatasetContext is the resilient dataset builder. Unlike the plain
// wrappers it does not abort on the first failure: each flow run is
// retried under opts.Retry with seed re-rolling and router escalation,
// modules that still fail are skipped and collected (errors.Join) while
// the remaining modules' samples are kept, and a BuildSummary reports what
// happened. The returned dataset and results are always non-nil alongside
// a non-nil error when at least one module survived; only context
// cancellation aborts the whole build.
//
// The build fans out: every (module, label-run) pair is an independent
// flow execution, and opts.Workers of them run concurrently (default: one
// per CPU). Parallel execution is an implementation detail — the per-run
// seed derivation, the row order, the label-averaging float arithmetic,
// the BuildSummary counts and the errors.Join order are reproduced by a
// sequential reduce over the per-cell results, so any worker count yields
// byte-identical output (see TestBuildDatasetDeterministicAcrossWorkers).
func BuildDatasetContext(ctx context.Context, mods []*ir.Module, cfg flow.Config, opts BuildOptions) (*dataset.Dataset, []*flow.Result, *BuildSummary, error) {
	return buildDataset(ctx, mods, cfg, opts, nil)
}

// buildDataset is the shared build pipeline: checkpoint restore, cell
// execution (the internal worker pool when exec is nil, the caller's
// CellExecutor otherwise — see BuildDatasetExec), and the index-ordered
// assembly that makes the output independent of how cells were scheduled.
func buildDataset(ctx context.Context, mods []*ir.Module, cfg flow.Config, opts BuildOptions, exec CellExecutor) (*dataset.Dataset, []*flow.Result, *BuildSummary, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	labelRuns := opts.LabelRuns
	if labelRuns < 1 {
		labelRuns = 1
	}
	// One "dataset.build" span wraps the whole build; each (module,
	// label-run) cell starts its own child span on whatever worker runs
	// it (see runCells). Observation happens at cell granularity so the
	// parallel schedule is visible in the trace without perturbing it.
	o := cfg.Obs
	var bsp *obs.Span
	if obs.Tracing(ctx, o) {
		ctx, bsp = obs.StartSpan(ctx, o, "dataset.build",
			obs.Int("modules", int64(len(mods))), obs.Int("label_runs", int64(labelRuns)))
	}
	defer bsp.End()
	ds := dataset.New()

	// Restore checkpointed modules first: a module whose (text, config,
	// label-run count) block is already in the artifact store skips its
	// flow runs entirely. A block that fails to load — missing, corrupt,
	// or with a stale feature layout — is simply recomputed.
	ck := opts.Checkpoint
	done := make([]bool, len(mods))
	restoredSamples := make([][]*dataset.Sample, len(mods))
	restoredFirst := make([]*flow.Result, len(mods))
	if ck != nil {
		for mi, m := range mods {
			samples, first, ok := ck.LoadModule(m, cfg, labelRuns)
			if !ok || !samplesFitLayout(samples, len(ds.FeatureNames)) {
				continue
			}
			restoredSamples[mi], restoredFirst[mi] = samples, first
			done[mi] = true
		}
	}

	var cells []runCell
	if exec == nil {
		cells = runCells(ctx, mods, cfg, labelRuns, opts, done)
	} else {
		cells = execCells(ctx, mods, cfg, labelRuns, done, exec)
	}

	var results []*flow.Result
	sum := &BuildSummary{Modules: len(mods)}
	for mi, m := range mods {
		if done[mi] {
			ds.Samples = append(ds.Samples, restoredSamples[mi]...)
			results = append(results, restoredFirst[mi])
			sum.Succeeded++
			sum.Restored++
			continue
		}
		traced, first, runs, err := reduceModuleCells(cells[mi*labelRuns : (mi+1)*labelRuns])
		sum.FlowRuns += runs
		if err != nil {
			if ctx.Err() != nil {
				// Cancellation is not a per-module condition: stop the
				// whole build and report how far it got.
				return ds, results, sum, errors.Join(append([]error{err}, errList(sum)...)...)
			}
			sum.Failed = append(sum.Failed, ModuleFailure{Module: m.Name, Err: err})
			o.Count(obs.MetricBuildModulesFailed, 1)
			if l := o.Logger(); l != nil {
				l.Warn("dataset build skipped module", "module", m.Name, "error", err)
			}
			continue
		}
		// Build the graph and extractor from the flow result's own module:
		// with flow caching enabled, `first` may have been produced from a
		// content-identical but pointer-distinct module instance, and the
		// extractor keys off op identity. Content equality makes the
		// emitted features byte-identical either way.
		g := graph.Build(first.Mod, first.Bind)
		ex := features.NewExtractor(first.Mod, first.Sched, first.Bind, g, cfg.Dev)
		start := ds.Len()
		ds.FromTrace(m.Name, traced, ex)
		results = append(results, first)
		sum.Succeeded++
		if ck != nil {
			// Persist the module as soon as it completes, so a kill at any
			// later point loses at most the in-flight modules. A failed
			// save just means this module is rebuilt next time.
			if cerr := ck.SaveModule(m, cfg, labelRuns, ds.FeatureNames, ds.Samples[start:], first); cerr != nil {
				if l := o.Logger(); l != nil {
					l.Warn("dataset build checkpoint not taken", "module", m.Name, "error", cerr)
				}
			}
		}
	}
	o.Count(obs.MetricBuildFlowRuns, int64(sum.FlowRuns))
	if l := o.Logger(); l != nil {
		l.Info("dataset build complete", "modules", sum.Modules, "succeeded", sum.Succeeded,
			"restored", sum.Restored, "flow_runs", sum.FlowRuns, "samples", ds.Len())
	}
	return ds, results, sum, sum.Err()
}

// samplesFitLayout guards a checkpoint restore: every restored sample must
// carry the build's current feature layout, or the module is recomputed.
func samplesFitLayout(samples []*dataset.Sample, cols int) bool {
	for _, s := range samples {
		if len(s.Features) != cols {
			return false
		}
	}
	return true
}

// runCell is the outcome of one (module, label-run) flow execution.
type runCell struct {
	traced []backtrace.OpCongestion
	res    *flow.Result
	err    error
}

// errRunSkipped marks a label run never executed because an earlier seed
// of the same module had already failed. The reduce stops at that earlier
// failure, so this sentinel never reaches a caller; it only saves flow
// runs the sequential build would not have made either.
var errRunSkipped = errors.New("core: label run skipped after an earlier seed failed")

// runCells executes the flattened (module × label-run) grid on a bounded
// worker pool. Cell k covers module k/labelRuns, run k%labelRuns, and its
// placement seed depends only on that position — never on scheduling — so
// every worker count produces the same per-cell outcome. Modules marked
// done (restored from a checkpoint) are skipped; their cells are never
// reduced.
func runCells(ctx context.Context, mods []*ir.Module, cfg flow.Config, labelRuns int, opts BuildOptions, done []bool) []runCell {
	cells := make([]runCell, len(mods)*labelRuns)
	// failedAt[mi] is the lowest label-run index of module mi that has
	// failed so far (labelRuns = none yet). Later runs of a failed module
	// are skipped best-effort, mirroring the sequential early exit.
	failedAt := make([]atomic.Int64, len(mods))
	for i := range failedAt {
		failedAt[i].Store(int64(labelRuns))
	}
	perr := parallel.ForEach(ctx, len(cells), opts.Workers, func(ctx context.Context, k int) {
		mi, run := k/labelRuns, k%labelRuns
		if done[mi] {
			return
		}
		if int64(run) > failedAt[mi].Load() {
			cells[k].err = errRunSkipped
			return
		}
		runCfg := CellConfig(cfg, run)
		o := cfg.Obs
		var sp *obs.Span
		t0 := time.Now()
		if obs.Tracing(ctx, o) {
			ctx, sp = obs.StartSpan(ctx, o, "module.run",
				obs.String("module", mods[mi].Name), obs.Int("label_run", int64(run)))
		}
		res, err := flow.RunWithRetry(ctx, mods[mi], runCfg, opts.Retry)
		sp.SetError(err)
		sp.End()
		o.ObserveMs(obs.MetricBuildRunMs, time.Since(t0))
		if err != nil {
			for {
				cur := failedAt[mi].Load()
				if int64(run) >= cur || failedAt[mi].CompareAndSwap(cur, int64(run)) {
					break
				}
			}
			cells[k].err = err
			return
		}
		cells[k].res = res
		cells[k].traced = backtrace.Trace(res)
	})
	if perr != nil {
		// The pool stopped early: cells no task ever touched carry the
		// cancellation cause so the reduce reports them as aborted runs.
		for k := range cells {
			if cells[k].err == nil && cells[k].res == nil {
				cells[k].err = perr
			}
		}
	}
	return cells
}

// reduceModuleCells folds one module's label runs into the seed-averaged
// trace, replaying the sequential aggregation in run order: the first
// failed run aborts the module with that error and a runs count of the
// successes before it, and the float accumulation order matches the
// sequential build exactly.
func reduceModuleCells(cells []runCell) (traced []backtrace.OpCongestion, first *flow.Result, runs int, err error) {
	labelRuns := len(cells)
	var marginVotes []int
	for run, c := range cells {
		if c.err != nil {
			return nil, nil, runs, c.err
		}
		runs++
		tr := c.traced
		if run == 0 {
			first = c.res
			traced = tr
			marginVotes = make([]int, len(tr))
			for i := range tr {
				if tr[i].Margin {
					marginVotes[i]++
				}
			}
			continue
		}
		if len(tr) != len(traced) {
			return nil, nil, runs, fmt.Errorf("trace size changed across seeds (%d vs %d)", len(tr), len(traced))
		}
		for i := range traced {
			traced[i].VertPct += tr[i].VertPct
			traced[i].HorizPct += tr[i].HorizPct
			traced[i].AvgPct += tr[i].AvgPct
			if tr[i].Margin {
				marginVotes[i]++
			}
		}
	}
	inv := 1.0 / float64(labelRuns)
	for i := range traced {
		traced[i].VertPct *= inv
		traced[i].HorizPct *= inv
		traced[i].AvgPct *= inv
		// An operation is marginal when placement puts it at the die
		// margin at least half the time.
		traced[i].Margin = 2*marginVotes[i] >= labelRuns
	}
	return traced, first, runs, nil
}

// errList converts the summary's failures for joining with an abort cause.
func errList(s *BuildSummary) []error {
	errs := make([]error, len(s.Failed))
	for i, f := range s.Failed {
		errs[i] = fmt.Errorf("core: dataset build on %q: %w", f.Module, f.Err)
	}
	return errs
}

// Predictor is the trained congestion estimator: one regressor per
// congestion target plus the feature scaler.
type Predictor struct {
	Kind   ModelKind
	scaler *ml.Scaler
	models map[dataset.Target]ml.Regressor
}

// TrainOptions tunes predictor training.
type TrainOptions struct {
	Kind ModelKind
	// Filter removes marginal operations before training (Sec. III-C1).
	Filter bool
	Seed   int64
	// Size selects the model effort level; the zero value (SizeFull) is
	// the published configuration, SizeQuick the shrunken smoke-run one.
	Size ModelSize
}

// Train fits one regressor per congestion target on the dataset.
func Train(ds *dataset.Dataset, opts TrainOptions) (*Predictor, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("core: train on empty dataset")
	}
	if opts.Filter {
		ds, _ = ds.FilterMarginal()
	}
	X, _ := ds.Matrix(dataset.Vertical)
	scaler := ml.FitScaler(X)
	var xm ml.Matrix
	scaler.TransformRowsInto(&xm, X)
	Xs := xm.RowViews(nil)
	p := &Predictor{Kind: opts.Kind, scaler: scaler, models: make(map[dataset.Target]ml.Regressor)}
	for _, t := range dataset.Targets {
		_, y := ds.Matrix(t)
		m := NewModelSized(opts.Kind, opts.Seed, opts.Size)
		if err := m.Fit(Xs, y); err != nil {
			return nil, fmt.Errorf("core: train %s/%s: %w", opts.Kind, t, err)
		}
		p.models[t] = m
	}
	return p, nil
}

// Model exposes the trained regressor for a target (nil if missing).
func (p *Predictor) Model(t dataset.Target) ml.Regressor { return p.models[t] }

// NumFeatures returns the feature-vector width this predictor was trained
// on — the width every row handed to PredictSample or PredictBatchInto
// must have.
func (p *Predictor) NumFeatures() int { return p.scaler.Width() }

// BatchShapeError reports a prediction batch the predictor cannot score:
// a feature row whose width does not match the trained feature layout.
// Batches arrive from untrusted callers (the serving path decodes them off
// the network), so a malformed row is data, not a programming error — the
// batch is rejected before any model sees it, and no output slot is
// written.
type BatchShapeError struct {
	// Row is the index of the first offending feature row.
	Row int
	// Got is that row's width; Want is the predictor's feature count.
	Got, Want int
}

func (e *BatchShapeError) Error() string {
	return fmt.Sprintf("core: batch row %d has %d features, predictor wants %d", e.Row, e.Got, e.Want)
}

// validateBatch rejects ragged or mis-sized feature rows before they reach
// the scaler: TransformRowsInto sizes its flat matrix off row 0, so without
// this check a short row would read stale scratch and a long one would be
// silently truncated — either way corrupting the whole batch.
func (p *Predictor) validateBatch(feats [][]float64) error {
	want := p.NumFeatures()
	for i, row := range feats {
		if len(row) != want {
			return &BatchShapeError{Row: i, Got: len(row), Want: want}
		}
	}
	return nil
}

// predScratch is the pooled working set of the predictor's serving path:
// one standardized-row buffer for single samples, one flat matrix plus row
// views for batches. Pooling (instead of per-Predictor state) keeps
// concurrent prediction on a shared Predictor allocation-free and safe.
type predScratch struct {
	row  []float64
	m    ml.Matrix
	rows [][]float64
}

var predScratchPool = sync.Pool{New: func() any { return &predScratch{} }}

// PredictSample estimates all three congestion metrics for one raw feature
// vector. Steady-state calls do not allocate.
func (p *Predictor) PredictSample(feats []float64) (vert, horiz, avg float64) {
	ps := predScratchPool.Get().(*predScratch)
	if cap(ps.row) < len(feats) {
		ps.row = make([]float64, len(feats))
	}
	row := ps.row[:len(feats)]
	p.scaler.TransformRowInto(row, feats)
	vert = p.models[dataset.Vertical].Predict(row)
	horiz = p.models[dataset.Horizontal].Predict(row)
	avg = p.models[dataset.Average].Predict(row)
	predScratchPool.Put(ps)
	return vert, horiz, avg
}

// PredictBatchInto estimates all three congestion metrics for a batch of
// raw feature vectors, writing into the caller-owned output slices (each
// len(feats)). Rows are standardized into a pooled flat matrix and each
// model takes its allocation-free batch path (GBRT walks its flattened
// forest), so steady-state calls do not allocate. Values are identical to
// PredictSample per row.
//
// Every row must have exactly NumFeatures entries; a ragged or mis-sized
// batch is rejected whole with a *BatchShapeError before anything is
// written. Mis-sized output slices are a caller bug and still panic.
func (p *Predictor) PredictBatchInto(vert, horiz, avg []float64, feats [][]float64) error {
	if len(vert) != len(feats) || len(horiz) != len(feats) || len(avg) != len(feats) {
		panic(fmt.Sprintf("core: PredictBatchInto output lengths %d/%d/%d for %d rows",
			len(vert), len(horiz), len(avg), len(feats)))
	}
	if err := p.validateBatch(feats); err != nil {
		return err
	}
	ps := predScratchPool.Get().(*predScratch)
	p.scaler.TransformRowsInto(&ps.m, feats)
	ps.rows = ps.m.RowViews(ps.rows)
	ml.PredictBatchInto(p.models[dataset.Vertical], ps.rows, vert)
	ml.PredictBatchInto(p.models[dataset.Horizontal], ps.rows, horiz)
	ml.PredictBatchInto(p.models[dataset.Average], ps.rows, avg)
	predScratchPool.Put(ps)
	return nil
}

// OpPrediction is the estimated congestion of one IR operation.
type OpPrediction struct {
	Op       *ir.Op
	VertPct  float64
	HorizPct float64
	AvgPct   float64
}

// PredictModule estimates per-operation congestion for a design running
// only the HLS front half (schedule + bind + feature extraction) — no
// placement, no routing. This is the prediction phase of Fig. 2: the whole
// point of the paper is that this call replaces hours of RTL
// implementation.
func (p *Predictor) PredictModule(m *ir.Module, cfg flow.Config) ([]OpPrediction, error) {
	sched, err := hls.ScheduleModule(m, cfg.Clock)
	if err != nil {
		return nil, fmt.Errorf("core: predict: %w", err)
	}
	bind := hls.BindModule(sched)
	g := graph.Build(m, bind)
	ex := features.NewExtractor(m, sched, bind, g, cfg.Dev)
	ops := m.AllOps()
	if len(ops) == 0 {
		return nil, nil
	}
	feats := make([][]float64, len(ops))
	for i, o := range ops {
		feats[i] = ex.Vector(o)
	}
	vert := make([]float64, len(ops))
	horiz := make([]float64, len(ops))
	avg := make([]float64, len(ops))
	if err := p.PredictBatchInto(vert, horiz, avg, feats); err != nil {
		// The extractor emits fixed-width vectors, so a shape error here
		// means the predictor artifact and the library's feature layout
		// have drifted apart.
		return nil, fmt.Errorf("core: predict: %w", err)
	}
	out := make([]OpPrediction, len(ops))
	for i, o := range ops {
		out[i] = OpPrediction{Op: o, VertPct: vert[i], HorizPct: horiz[i], AvgPct: avg[i]}
	}
	return out, nil
}

// Hotspot aggregates predicted congestion per source location — the
// "congested region in the source code" report the designer acts on.
type Hotspot struct {
	Loc    ir.SourceLoc
	Ops    int
	MaxAvg float64
	MeanV  float64
	MeanH  float64
}

// Hotspots groups predictions by source line, sorted by descending maximum
// predicted average congestion.
func Hotspots(preds []OpPrediction) []Hotspot {
	agg := make(map[ir.SourceLoc]*Hotspot)
	for _, pr := range preds {
		h := agg[pr.Op.Src]
		if h == nil {
			h = &Hotspot{Loc: pr.Op.Src}
			agg[pr.Op.Src] = h
		}
		h.Ops++
		h.MeanV += pr.VertPct
		h.MeanH += pr.HorizPct
		if pr.AvgPct > h.MaxAvg {
			h.MaxAvg = pr.AvgPct
		}
	}
	out := make([]Hotspot, 0, len(agg))
	for _, h := range agg {
		h.MeanV /= float64(h.Ops)
		h.MeanH /= float64(h.Ops)
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxAvg != out[j].MaxAvg {
			return out[i].MaxAvg > out[j].MaxAvg
		}
		if out[i].Loc.File != out[j].Loc.File {
			return out[i].Loc.File < out[j].Loc.File
		}
		return out[i].Loc.Line < out[j].Loc.Line
	})
	return out
}

// Accuracy is one Table IV cell pair.
type Accuracy struct {
	MAE   float64
	MedAE float64
}

// EvalRow is one Table IV row: accuracy per congestion target for one
// model and filtering choice.
type EvalRow struct {
	Kind     ModelKind
	Filtered bool
	Acc      map[dataset.Target]Accuracy
}

// Evaluate reproduces one Table IV row: randomly split the dataset 80/20
// (the split depends only on the seed, so every model and filtering choice
// is compared on the same partition), optionally drop the marginal
// operations from both sides (Sec. III-C1 filters during dataset
// construction, before any split), train on the training portion and score
// MAE/MedAE on the unseen test split.
func Evaluate(ds *dataset.Dataset, kind ModelKind, filter bool, seed int64) (EvalRow, error) {
	return EvaluateSized(ds, kind, filter, seed, SizeFull)
}

// EvaluateSized is Evaluate with an explicit model effort level.
func EvaluateSized(ds *dataset.Dataset, kind ModelKind, filter bool, seed int64, size ModelSize) (EvalRow, error) {
	row := EvalRow{Kind: kind, Filtered: filter, Acc: make(map[dataset.Target]Accuracy)}
	rng := rand.New(rand.NewSource(seed))
	split := ml.TrainTestSplit(ds.Len(), 0.2, rng)
	marginal := ds.Marginal()

	train := &dataset.Dataset{FeatureNames: ds.FeatureNames}
	for _, i := range split.Train {
		if filter && marginal[i] {
			continue
		}
		train.Samples = append(train.Samples, ds.Samples[i])
	}
	test := &dataset.Dataset{FeatureNames: ds.FeatureNames}
	for _, i := range split.Test {
		if filter && marginal[i] {
			continue
		}
		test.Samples = append(test.Samples, ds.Samples[i])
	}

	Xtr, _ := train.Matrix(dataset.Vertical)
	scaler := ml.FitScaler(Xtr)
	var xtrM, xteM ml.Matrix
	scaler.TransformRowsInto(&xtrM, Xtr)
	XtrS := xtrM.RowViews(nil)
	Xte, _ := test.Matrix(dataset.Vertical)
	scaler.TransformRowsInto(&xteM, Xte)
	XteS := xteM.RowViews(nil)

	pred := make([]float64, len(XteS))
	for _, t := range dataset.Targets {
		_, ytr := train.Matrix(t)
		_, yte := test.Matrix(t)
		m := NewModelSized(kind, seed, size)
		if err := m.Fit(XtrS, ytr); err != nil {
			return row, fmt.Errorf("core: evaluate %s/%s: %w", kind, t, err)
		}
		ml.PredictBatchInto(m, XteS, pred)
		row.Acc[t] = Accuracy{MAE: ml.MAE(yte, pred), MedAE: ml.MedAE(yte, pred)}
	}
	return row, nil
}
