package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func trainedPredictor(t *testing.T, kind ModelKind) (*Predictor, *dataset.Dataset) {
	t.Helper()
	ds, _, err := BuildDataset(tinyModules(), quickFlow())
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Train(ds, TrainOptions{Kind: kind, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return pred, ds
}

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	for _, kind := range ModelKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			pred, ds := trainedPredictor(t, kind)
			var buf bytes.Buffer
			if err := pred.Save(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := LoadPredictor(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if back.Kind != kind {
				t.Fatalf("kind = %v", back.Kind)
			}
			// Predictions must match bit-for-bit.
			for i := 0; i < 20 && i < ds.Len(); i++ {
				v1, h1, a1 := pred.PredictSample(ds.Samples[i].Features)
				v2, h2, a2 := back.PredictSample(ds.Samples[i].Features)
				if v1 != v2 || h1 != h2 || a1 != a2 {
					t.Fatalf("sample %d predictions differ after reload", i)
				}
			}
		})
	}
}

func TestLoadPredictorRejectsGarbage(t *testing.T) {
	if _, err := LoadPredictor(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadPredictor(strings.NewReader(`{"kind":0,"num_features":5}`)); err == nil {
		t.Fatal("stale feature count accepted")
	}
}
