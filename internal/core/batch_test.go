package core

// Tests for the validated batch-prediction contract: ragged input is a
// typed data error (it arrives off the wire in the serving layer), and
// concurrent PredictBatchInto callers sharing one Predictor must agree
// with the sequential per-sample path.

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/features"
)

// batchDataset builds a synthetic full-width training set; batch tests
// need a structurally valid predictor, not an accurate one.
func batchDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New()
	for i := 0; i < n; i++ {
		f := make([]float64, features.NumFeatures)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		ds.Samples = append(ds.Samples, &dataset.Sample{
			Design: "synthetic", OpID: i, Features: f,
			VertPct:     25 + 4*f[0] - 2*f[3] + rng.NormFloat64(),
			HorizPct:    20 + 3*f[1] + rng.NormFloat64(),
			AvgPct:      22 + 2*f[0] + rng.NormFloat64(),
			ReplicaRoot: -1,
		})
	}
	return ds
}

func batchRows(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, features.NumFeatures)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		rows[i] = row
	}
	return rows
}

func TestPredictBatchIntoRaggedTypedError(t *testing.T) {
	p, err := Train(batchDataset(60, 3), TrainOptions{Kind: Linear, Seed: 1, Size: SizeQuick})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if p.NumFeatures() != features.NumFeatures {
		t.Fatalf("NumFeatures = %d, want %d", p.NumFeatures(), features.NumFeatures)
	}

	rows := batchRows(4, 9)
	rows[2] = rows[2][:17] // one ragged row deep in the batch
	out := make([]float64, len(rows))
	err = p.PredictBatchInto(out, out, out, rows)
	var shape *BatchShapeError
	if !errors.As(err, &shape) {
		t.Fatalf("ragged batch returned %v, want *BatchShapeError", err)
	}
	if shape.Row != 2 || shape.Got != 17 || shape.Want != features.NumFeatures {
		t.Fatalf("shape error %+v, want Row=2 Got=17 Want=%d", shape, features.NumFeatures)
	}
	if !strings.Contains(shape.Error(), "row 2") {
		t.Fatalf("error text %q does not name the row", shape.Error())
	}

	// Validation runs before any scratch is touched: the same call with
	// the row restored succeeds.
	rows = batchRows(4, 9)
	vert := make([]float64, len(rows))
	horiz := make([]float64, len(rows))
	avg := make([]float64, len(rows))
	if err := p.PredictBatchInto(vert, horiz, avg, rows); err != nil {
		t.Fatalf("clean batch after ragged one: %v", err)
	}

	// An empty batch is a no-op success.
	if err := p.PredictBatchInto(nil, nil, nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestPredictBatchIntoOutputLengthPanics(t *testing.T) {
	p, err := Train(batchDataset(60, 3), TrainOptions{Kind: Linear, Seed: 1, Size: SizeQuick})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short output slice did not panic (caller bug, not data error)")
		}
	}()
	rows := batchRows(4, 9)
	short := make([]float64, 2)
	p.PredictBatchInto(short, short, short, rows)
}

// TestPredictBatchIntoConcurrent hammers one Predictor from many
// goroutines under -race: the pooled scratch inside PredictBatchInto must
// be per-call, and every result must equal the sequential PredictSample
// answer bit for bit.
func TestPredictBatchIntoConcurrent(t *testing.T) {
	for _, kind := range ModelKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			p, err := Train(batchDataset(80, 5), TrainOptions{Kind: kind, Seed: 2, Size: SizeQuick})
			if err != nil {
				t.Fatalf("train: %v", err)
			}
			rows := batchRows(48, 11)
			wantV := make([]float64, len(rows))
			wantH := make([]float64, len(rows))
			wantA := make([]float64, len(rows))
			for i, row := range rows {
				wantV[i], wantH[i], wantA[i] = p.PredictSample(row)
			}

			const workers = 8
			const iters = 25
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					vert := make([]float64, len(rows))
					horiz := make([]float64, len(rows))
					avg := make([]float64, len(rows))
					// Each worker slides over a different sub-batch each
					// iteration so batch sizes vary concurrently.
					for it := 0; it < iters; it++ {
						lo := (w + it) % len(rows)
						sub := rows[lo:]
						if err := p.PredictBatchInto(vert[:len(sub)], horiz[:len(sub)], avg[:len(sub)], sub); err != nil {
							t.Errorf("worker %d: %v", w, err)
							return
						}
						for i := range sub {
							if vert[i] != wantV[lo+i] || horiz[i] != wantH[lo+i] || avg[i] != wantA[lo+i] {
								t.Errorf("worker %d: row %d diverges from PredictSample", w, lo+i)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
