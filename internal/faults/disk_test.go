package faults

import (
	"errors"
	"syscall"
	"testing"
)

func TestDiskScriptFiresByOccurrence(t *testing.T) {
	s := NewDiskScript(map[DiskKey]DiskFault{
		{Op: DiskOpWrite, N: 1}:  DiskTornWrite,
		{Op: DiskOpWrite, N: 3}:  DiskBitFlip,
		{Op: DiskOpRename, N: 0}: DiskRenameFail,
	})
	got := []DiskFault{
		s.Next(DiskOpWrite), s.Next(DiskOpWrite), s.Next(DiskOpWrite), s.Next(DiskOpWrite),
	}
	want := []DiskFault{DiskNone, DiskTornWrite, DiskNone, DiskBitFlip}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("write %d: fault = %v, want %v", i, got[i], want[i])
		}
	}
	if f := s.Next(DiskOpRename); f != DiskRenameFail {
		t.Errorf("rename 0: fault = %v, want rename-fail", f)
	}
	if f := s.Next(DiskOpRename); f != DiskNone {
		t.Errorf("rename 1: fault = %v, want none", f)
	}
	if n := s.Count(DiskOpWrite); n != 4 {
		t.Errorf("write count = %d, want 4", n)
	}
}

func TestDiskScriptResetReplays(t *testing.T) {
	s := NewDiskScript(map[DiskKey]DiskFault{{Op: DiskOpWrite, N: 0}: DiskNoSpace})
	if f := s.Next(DiskOpWrite); f != DiskNoSpace {
		t.Fatalf("first write fault = %v, want enospc", f)
	}
	if f := s.Next(DiskOpWrite); f != DiskNone {
		t.Fatalf("second write fault = %v, want none", f)
	}
	s.Reset()
	if f := s.Next(DiskOpWrite); f != DiskNoSpace {
		t.Fatalf("post-reset write fault = %v, want enospc again", f)
	}
}

func TestNilDiskScriptNeverInjects(t *testing.T) {
	var s *DiskScript
	if f := s.Next(DiskOpWrite); f != DiskNone {
		t.Fatalf("nil script injected %v", f)
	}
	s.Reset()
	if n := s.Count(DiskOpWrite); n != 0 {
		t.Fatalf("nil script counted %d", n)
	}
}

func TestErrNoSpaceMatchesSyscall(t *testing.T) {
	if !errors.Is(ErrNoSpace, syscall.ENOSPC) {
		t.Fatal("ErrNoSpace does not match syscall.ENOSPC")
	}
}

func TestDiskFaultStrings(t *testing.T) {
	for f, want := range map[DiskFault]string{
		DiskNone: "none", DiskTornWrite: "torn-write", DiskBitFlip: "bit-flip",
		DiskNoSpace: "enospc", DiskRenameFail: "rename-fail", DiskFault(99): "DiskFault(99)",
	} {
		if got := f.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(f), got, want)
		}
	}
}
