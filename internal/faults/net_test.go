package faults

import "testing"

// TestNetScriptDeterministic pins the occurrence-counting contract shared
// with DiskScript: the nth call of an op class gets exactly the scheduled
// fault, independent of other op classes, and Reset replays the script.
func TestNetScriptDeterministic(t *testing.T) {
	s := NewNetScript(map[NetKey]NetFault{
		{Op: "complete", N: 1}: NetDropResponse,
		{Op: "lease", N: 0}:    NetDropRequest,
		{Op: "complete", N: 3}: NetDuplicate,
	})
	for round := 0; round < 2; round++ {
		if got := s.Next("lease"); got != NetDropRequest {
			t.Fatalf("round %d: lease#0 = %v, want drop-request", round, got)
		}
		if got := s.Next("lease"); got != NetNone {
			t.Fatalf("round %d: lease#1 = %v, want none", round, got)
		}
		want := []NetFault{NetNone, NetDropResponse, NetNone, NetDuplicate, NetNone}
		for i, w := range want {
			if got := s.Next("complete"); got != w {
				t.Fatalf("round %d: complete#%d = %v, want %v", round, i, got, w)
			}
		}
		if got := s.Count("complete"); got != len(want) {
			t.Fatalf("round %d: complete count = %d, want %d", round, got, len(want))
		}
		s.Reset()
	}
}

// TestNetScriptNil pins nil-safety: a nil script injects nothing, so
// production paths pass their (usually nil) script straight through.
func TestNetScriptNil(t *testing.T) {
	var s *NetScript
	if got := s.Next("lease"); got != NetNone {
		t.Fatalf("nil script Next = %v, want none", got)
	}
	if got := s.Count("lease"); got != 0 {
		t.Fatalf("nil script Count = %d, want 0", got)
	}
	s.Reset()
}

// TestNetFaultString keeps the debug names stable for log output.
func TestNetFaultString(t *testing.T) {
	cases := map[NetFault]string{
		NetNone:         "none",
		NetDropRequest:  "drop-request",
		NetDropResponse: "drop-response",
		NetDuplicate:    "duplicate",
		NetFault(99):    "NetFault(99)",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(f), got, want)
		}
	}
}
