package faults

import (
	"fmt"
	"sync"
)

// NetFault enumerates the transport failure modes the build fleet injects
// into its HTTP client. Each models a distinct distributed-systems hazard
// the coordinator's queue protocol must absorb:
//
//   - a dropped request (the coordinator never saw it — pure client error),
//   - a dropped response (the coordinator DID process it, the worker only
//     lost the acknowledgement — the dangerous half, because a naive retry
//     turns into a duplicate side effect), and
//   - a duplicated call (a retry raced the original — completion must be
//     idempotent).
type NetFault int

const (
	// NetNone is the zero value: no fault.
	NetNone NetFault = iota
	// NetDropRequest fails the call before it reaches the server; the
	// server observes nothing.
	NetDropRequest
	// NetDropResponse lets the server process the call, then discards the
	// response on the way back; the client sees an error for a call that
	// took effect.
	NetDropResponse
	// NetDuplicate delivers the call to the server twice and returns the
	// second response, modeling a retransmitted request whose original
	// also landed.
	NetDuplicate
)

func (f NetFault) String() string {
	switch f {
	case NetNone:
		return "none"
	case NetDropRequest:
		return "drop-request"
	case NetDropResponse:
		return "drop-response"
	case NetDuplicate:
		return "duplicate"
	}
	return fmt.Sprintf("NetFault(%d)", int(f))
}

// ErrNetDropped is the error surfaced to the caller for both drop modes;
// the caller cannot tell which half was lost — exactly the ambiguity a
// real timeout has.
var ErrNetDropped = fmt.Errorf("faults: injected network drop")

// NetKey identifies one injection point: the zero-based occurrence index
// of an operation class ("drop the 2nd complete call").
type NetKey struct {
	Op string
	N  int
}

// NetScript injects transport faults deterministically, mirroring
// DiskScript: occurrences of each operation class are counted and exactly
// the faults the table names fire. Mutex-guarded; under concurrency the
// occurrence order follows arrival, so deterministic tests drive one
// worker at a time.
type NetScript struct {
	mu     sync.Mutex
	faults map[NetKey]NetFault
	seen   map[string]int
}

// NewNetScript builds a script from an explicit injection table. The map
// is copied, so callers may reuse or mutate theirs afterwards.
func NewNetScript(table map[NetKey]NetFault) *NetScript {
	faults := make(map[NetKey]NetFault, len(table))
	for k, f := range table {
		faults[k] = f
	}
	return &NetScript{faults: faults, seen: make(map[string]int)}
}

// Next records one occurrence of the operation class and returns the
// fault scheduled for it (NetNone for most). Nil-safe.
func (s *NetScript) Next(op string) NetFault {
	if s == nil {
		return NetNone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.seen[op]
	s.seen[op] = n + 1
	return s.faults[NetKey{Op: op, N: n}]
}

// Count returns how many occurrences of the operation class have been
// observed so far.
func (s *NetScript) Count(op string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen[op]
}

// Reset zeroes the occurrence counters, replaying the script from the
// start.
func (s *NetScript) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen = make(map[string]int)
}
