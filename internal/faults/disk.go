package faults

import (
	"fmt"
	"sync"
	"syscall"
)

// DiskFault enumerates the failure modes the artifact store can inject
// into its own I/O path. Each one models a distinct real-world corruption:
// a torn write (power loss mid-write leaves a truncated file), a bit flip
// (silent media corruption), ENOSPC (the volume fills up mid-put) and a
// rename failure (the commit step of the atomic-write protocol fails).
type DiskFault int

const (
	// DiskNone is the zero value: no fault.
	DiskNone DiskFault = iota
	// DiskTornWrite truncates the data actually written, simulating a
	// crash between write and fsync. The entry's declared length no longer
	// matches the file, so the startup scan or the read-side checksum must
	// catch it.
	DiskTornWrite
	// DiskBitFlip flips one bit of the written payload, simulating silent
	// media corruption. Only the read-side digest verification can catch
	// it.
	DiskBitFlip
	// DiskNoSpace fails the write with ENOSPC before any byte lands.
	DiskNoSpace
	// DiskRenameFail fails the atomic-commit rename, leaving only the
	// temporary file behind.
	DiskRenameFail
	// DiskReadError fails a read with an I/O error after the bytes were
	// fetched, simulating a dying disk (or an entry evicted out from under
	// the reader by another process). The store must degrade to a miss,
	// never surface a partial payload.
	DiskReadError
)

func (f DiskFault) String() string {
	switch f {
	case DiskNone:
		return "none"
	case DiskTornWrite:
		return "torn-write"
	case DiskBitFlip:
		return "bit-flip"
	case DiskNoSpace:
		return "enospc"
	case DiskRenameFail:
		return "rename-fail"
	case DiskReadError:
		return "read-error"
	}
	return fmt.Sprintf("DiskFault(%d)", int(f))
}

// Disk-operation classes the store consults the script about. They are
// coarse on purpose: a fault script targets "the nth write the store
// performs", not a particular key, so tests stay independent of cache-key
// values.
const (
	// DiskOpWrite is one payload write into a temporary file.
	DiskOpWrite = "write"
	// DiskOpRename is one atomic-commit rename of a temporary file.
	DiskOpRename = "rename"
	// DiskOpRead is one entry read on the Get path.
	DiskOpRead = "read"
)

// ErrReadFault is the error DiskReadError injects; it wraps syscall.EIO so
// callers can errors.Is-match the real condition.
var ErrReadFault = fmt.Errorf("faults: injected read error: %w", syscall.EIO)

// ErrNoSpace is the error DiskNoSpace injects; it wraps syscall.ENOSPC so
// callers can errors.Is-match the real condition.
var ErrNoSpace = fmt.Errorf("faults: injected disk full: %w", syscall.ENOSPC)

// DiskKey identifies one injection point: the zero-based occurrence index
// of an operation class ("fail the 2nd write").
type DiskKey struct {
	Op string
	N  int
}

// DiskScript injects disk faults deterministically: it counts occurrences
// of each operation class and fires exactly the faults its table names.
// Unlike the stage-fault Script it must carry state (the occurrence
// counters), so it is mutex-guarded and safe for concurrent use; given the
// same sequence of store operations it always injects the same faults.
type DiskScript struct {
	mu     sync.Mutex
	faults map[DiskKey]DiskFault
	seen   map[string]int
}

// NewDiskScript builds a script from an explicit injection table. The map
// is copied, so callers may reuse or mutate theirs afterwards.
func NewDiskScript(table map[DiskKey]DiskFault) *DiskScript {
	faults := make(map[DiskKey]DiskFault, len(table))
	for k, f := range table {
		faults[k] = f
	}
	return &DiskScript{faults: faults, seen: make(map[string]int)}
}

// Next records one occurrence of the operation class and returns the fault
// scheduled for it (DiskNone for most). Safe for concurrent use; note that
// under concurrency the assignment of occurrence indices to callers follows
// arrival order, so deterministic tests drive the store single-threaded.
func (s *DiskScript) Next(op string) DiskFault {
	if s == nil {
		return DiskNone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.seen[op]
	s.seen[op] = n + 1
	return s.faults[DiskKey{Op: op, N: n}]
}

// Count returns how many occurrences of the operation class have been
// observed so far.
func (s *DiskScript) Count(op string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen[op]
}

// Reset zeroes the occurrence counters, replaying the script from the
// start.
func (s *DiskScript) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen = make(map[string]int)
}
