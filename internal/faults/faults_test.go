package faults

import (
	"errors"
	"testing"
)

func TestScriptChecksExactKeys(t *testing.T) {
	boom := errors.New("boom")
	s := Script{{Stage: "route", Attempt: 1}: boom}
	if err := s.Check("d", "route", 0); err != nil {
		t.Fatalf("attempt 0 failed: %v", err)
	}
	if err := s.Check("d", "route", 1); !errors.Is(err, boom) {
		t.Fatalf("attempt 1: got %v, want boom", err)
	}
	if err := s.Check("d", "place", 1); err != nil {
		t.Fatalf("other stage failed: %v", err)
	}
}

func TestFailFirst(t *testing.T) {
	boom := errors.New("boom")
	s := FailFirst("route", 2, boom)
	for a := 0; a < 2; a++ {
		if err := s.Check("d", "route", a); !errors.Is(err, boom) {
			t.Fatalf("attempt %d: got %v, want boom", a, err)
		}
	}
	if err := s.Check("d", "route", 2); err != nil {
		t.Fatalf("attempt 2 should succeed: %v", err)
	}
}

func TestSeededDeterministicAndRated(t *testing.T) {
	boom := errors.New("boom")
	inj := &Seeded{Seed: 7, Rate: 0.5, Err: boom}
	again := &Seeded{Seed: 7, Rate: 0.5, Err: boom}
	stages := []string{"schedule", "bind", "elaborate", "place", "route", "timing"}
	hits := 0
	total := 0
	for _, st := range stages {
		for a := 0; a < 50; a++ {
			e1, e2 := inj.Check("d", st, a), again.Check("d", st, a)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("non-deterministic at %s/%d", st, a)
			}
			if e1 != nil {
				if !errors.Is(e1, boom) {
					t.Fatalf("injected error lost cause: %v", e1)
				}
				hits++
			}
			total++
		}
	}
	if hits == 0 || hits == total {
		t.Fatalf("rate 0.5 produced %d/%d failures", hits, total)
	}
}

func TestForDesignFiltersByName(t *testing.T) {
	boom := errors.New("boom")
	inj := ForDesign("victim", FailFirst("route", 1, boom))
	if err := inj.Check("victim", "route", 0); !errors.Is(err, boom) {
		t.Fatalf("victim not injected: %v", err)
	}
	if err := inj.Check("other", "route", 0); err != nil {
		t.Fatalf("other design injected: %v", err)
	}
	if err := inj.Check("victim", "route", 1); err != nil {
		t.Fatalf("victim retry injected: %v", err)
	}
}

func TestSeededEdgeRates(t *testing.T) {
	if err := (&Seeded{Seed: 1, Rate: 0}).Check("d", "route", 0); err != nil {
		t.Fatalf("rate 0 injected: %v", err)
	}
	if err := (&Seeded{Seed: 1, Rate: 1}).Check("d", "route", 0); err == nil {
		t.Fatal("rate 1 did not inject")
	}
	var nilInj *Seeded
	if err := nilInj.Check("d", "route", 0); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if err := (&Seeded{Seed: 1, Rate: 1}).Check("d", "route", 3); err == nil {
		t.Fatal("nil Err should still inject a generic fault")
	}
}

func TestCountingTracksChecksAndInjections(t *testing.T) {
	boom := errors.New("boom")
	c := &Counting{Inner: FailFirst("route", 1, boom)}
	if err := c.Check("d", "route", 0); !errors.Is(err, boom) {
		t.Fatalf("inner decision lost: %v", err)
	}
	if err := c.Check("d", "route", 1); err != nil {
		t.Fatalf("unexpected injection: %v", err)
	}
	if err := c.Check("d", "place", 0); err != nil {
		t.Fatalf("unexpected injection: %v", err)
	}
	if checks, injected := c.Stats(); checks != 3 || injected != 1 {
		t.Fatalf("Stats() = (%d, %d), want (3, 1)", checks, injected)
	}
}

func TestCountingNilInnerNeverInjects(t *testing.T) {
	var c Counting
	for i := 0; i < 5; i++ {
		if err := c.Check("d", "route", i); err != nil {
			t.Fatalf("nil inner injected: %v", err)
		}
	}
	if checks, injected := c.Stats(); checks != 5 || injected != 0 {
		t.Fatalf("Stats() = (%d, %d), want (5, 0)", checks, injected)
	}
}

// TestCountingConcurrentChecks hammers one Counting injector from many
// goroutines; go test -race turns any unguarded state into a failure.
func TestCountingConcurrentChecks(t *testing.T) {
	boom := errors.New("boom")
	c := &Counting{Inner: FailFirst("route", 1, boom)}
	done := make(chan struct{})
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				c.Check("d", "route", (w+i)%2)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	checks, injected := c.Stats()
	if checks != workers*per {
		t.Fatalf("checks = %d, want %d", checks, workers*per)
	}
	if injected == 0 || injected > checks {
		t.Fatalf("implausible injected count %d of %d", injected, checks)
	}
}
