// Package faults provides deterministic, seed-driven fault injection for
// the implementation flow. An Injector decides, per (stage, attempt) pair,
// whether that stage should fail before doing any work; the flow runner
// consults it at every stage boundary when Config.Faults is set. Because
// every injector here is a pure function of its configuration, injected
// failures are perfectly reproducible — the property the resilience tests
// rely on to prove retry and degradation paths without flaky sleeps or
// global state.
package faults

import (
	"fmt"
	"hash/fnv"
)

// Injector decides whether a flow stage fails. Check is called once per
// stage per flow run with the design name, the stage's canonical name (see
// flow.Stage*) and the zero-based retry attempt; a non-nil return aborts
// the stage with that error. Implementations must be deterministic and
// safe for concurrent use.
type Injector interface {
	Check(design, stage string, attempt int) error
}

// Key identifies one injection point: a stage name plus the zero-based
// retry attempt of the flow run asking.
type Key struct {
	Stage   string
	Attempt int
}

// Script is an explicit injection table: exactly the (stage, attempt)
// pairs present fail, with the mapped error, regardless of design. It is
// the precision tool the resilience tests use ("fail routing on the first
// attempt only"); combine with ForDesign to target one design.
type Script map[Key]error

// Check implements Injector.
func (s Script) Check(design, stage string, attempt int) error {
	return s[Key{Stage: stage, Attempt: attempt}]
}

// FailFirst returns a script that fails the named stage on attempts
// 0..n-1 with err, succeeding from attempt n on — the canonical
// "retry eventually wins" scenario.
func FailFirst(stage string, n int, err error) Script {
	s := make(Script, n)
	for a := 0; a < n; a++ {
		s[Key{Stage: stage, Attempt: a}] = err
	}
	return s
}

// Seeded fails stages pseudo-randomly at a configured rate, keyed only by
// (Seed, stage, attempt) so a given seed always injects the same faults.
// Rate is the failure probability in [0, 1]; Err is the injected cause
// (wrapped with stage context). A nil Err injects a generic fault error.
type Seeded struct {
	Seed int64
	Rate float64
	Err  error
}

// ForDesign restricts an injector to one design by name, passing every
// other design through untouched — how a multi-module dataset build
// injects failures into a single member.
func ForDesign(design string, inner Injector) Injector {
	return designFilter{design: design, inner: inner}
}

type designFilter struct {
	design string
	inner  Injector
}

// Check implements Injector.
func (f designFilter) Check(design, stage string, attempt int) error {
	if design != f.design {
		return nil
	}
	return f.inner.Check(design, stage, attempt)
}

// Check implements Injector.
func (s *Seeded) Check(design, stage string, attempt int) error {
	if s == nil || s.Rate <= 0 {
		return nil
	}
	if s.Rate < 1 && hashFloat(s.Seed, stage, attempt) >= s.Rate {
		return nil
	}
	cause := s.Err
	if cause == nil {
		cause = fmt.Errorf("injected fault")
	}
	return fmt.Errorf("faults: seeded(%d) %s/attempt %d: %w", s.Seed, stage, attempt, cause)
}

// hashFloat maps (seed, stage, attempt) to a uniform-ish value in [0, 1).
func hashFloat(seed int64, stage string, attempt int) float64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
		buf[8+i] = byte(attempt >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(stage))
	const mask = 1<<53 - 1
	return float64(h.Sum64()&mask) / float64(1<<53)
}
