// Package faults provides deterministic, seed-driven fault injection for
// the implementation flow. An Injector decides, per (stage, attempt) pair,
// whether that stage should fail before doing any work; the flow runner
// consults it at every stage boundary when Config.Faults is set. Because
// every injector here is a pure function of its configuration, injected
// failures are perfectly reproducible — the property the resilience tests
// rely on to prove retry and degradation paths without flaky sleeps or
// global state.
package faults

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// Injector decides whether a flow stage fails. Check is called once per
// stage per flow run with the design name, the stage's canonical name (see
// flow.Stage*) and the zero-based retry attempt; a non-nil return aborts
// the stage with that error. Implementations must be deterministic and
// safe for concurrent use: the parallel dataset builder shares one
// injector across every worker, so Check races with itself. Every
// injector in this package is either stateless (Script, Seeded, ForDesign
// — pure functions of their configuration, safe to share as-is) or
// mutex-guarded (Counting).
type Injector interface {
	Check(design, stage string, attempt int) error
}

// Key identifies one injection point: a stage name plus the zero-based
// retry attempt of the flow run asking.
type Key struct {
	Stage   string
	Attempt int
}

// Script is an explicit injection table: exactly the (stage, attempt)
// pairs present fail, with the mapped error, regardless of design. It is
// the precision tool the resilience tests use ("fail routing on the first
// attempt only"); combine with ForDesign to target one design. The map is
// only ever read after construction, so concurrent Check calls are safe.
type Script map[Key]error

// Check implements Injector.
func (s Script) Check(design, stage string, attempt int) error {
	return s[Key{Stage: stage, Attempt: attempt}]
}

// FailFirst returns a script that fails the named stage on attempts
// 0..n-1 with err, succeeding from attempt n on — the canonical
// "retry eventually wins" scenario.
func FailFirst(stage string, n int, err error) Script {
	s := make(Script, n)
	for a := 0; a < n; a++ {
		s[Key{Stage: stage, Attempt: a}] = err
	}
	return s
}

// Seeded fails stages pseudo-randomly at a configured rate, keyed only by
// (Seed, stage, attempt) so a given seed always injects the same faults.
// Rate is the failure probability in [0, 1]; Err is the injected cause
// (wrapped with stage context). A nil Err injects a generic fault error.
type Seeded struct {
	Seed int64
	Rate float64
	Err  error
}

// ForDesign restricts an injector to one design by name, passing every
// other design through untouched — how a multi-module dataset build
// injects failures into a single member.
func ForDesign(design string, inner Injector) Injector {
	return designFilter{design: design, inner: inner}
}

type designFilter struct {
	design string
	inner  Injector
}

// Check implements Injector.
func (f designFilter) Check(design, stage string, attempt int) error {
	if design != f.design {
		return nil
	}
	return f.inner.Check(design, stage, attempt)
}

// Counting wraps an injector and counts, under a mutex, how often it was
// consulted and how often it injected. It is the observability tool for
// concurrent builds: a parallel dataset build shares one injector across
// all workers, and Counting is how a test (or a chaos run) asserts the
// number of injected faults without racing the pool. The zero value with
// a nil Inner counts checks and injects nothing.
type Counting struct {
	// Inner is the wrapped decision-maker; nil never injects.
	Inner Injector

	mu       sync.Mutex
	checks   int
	injected int
}

// Check implements Injector; safe for concurrent use.
func (c *Counting) Check(design, stage string, attempt int) error {
	var err error
	if c.Inner != nil {
		err = c.Inner.Check(design, stage, attempt)
	}
	c.mu.Lock()
	c.checks++
	if err != nil {
		c.injected++
	}
	c.mu.Unlock()
	return err
}

// Stats returns how many stage checks were made and how many injected a
// fault so far.
func (c *Counting) Stats() (checks, injected int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checks, c.injected
}

// Check implements Injector.
func (s *Seeded) Check(design, stage string, attempt int) error {
	if s == nil || s.Rate <= 0 {
		return nil
	}
	if s.Rate < 1 && hashFloat(s.Seed, stage, attempt) >= s.Rate {
		return nil
	}
	cause := s.Err
	if cause == nil {
		cause = fmt.Errorf("injected fault")
	}
	return fmt.Errorf("faults: seeded(%d) %s/attempt %d: %w", s.Seed, stage, attempt, cause)
}

// hashFloat maps (seed, stage, attempt) to a uniform-ish value in [0, 1).
func hashFloat(seed int64, stage string, attempt int) float64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
		buf[8+i] = byte(attempt >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(stage))
	const mask = 1<<53 - 1
	return float64(h.Sum64()&mask) / float64(1<<53)
}
