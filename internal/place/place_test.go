package place

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fpga"
	"repro/internal/hls"
	"repro/internal/ir"
	"repro/internal/rtl"
)

// testNetlist builds a modest two-function design with DSP and BRAM cells.
func testNetlist(t testing.TB) *rtl.Netlist {
	t.Helper()
	m := ir.NewModule("m")
	top := m.NewFunction("top")
	leaf := m.NewFunction("leaf")
	lb := ir.NewBuilder(leaf)
	lp := lb.Port("x", 16)
	lv := lb.Op(ir.KindMul, 16, lp, lp) // DSP cell
	lb.Ret(lv)
	b := ir.NewBuilder(top)
	p := b.Port("p", 16)
	a := b.Array("big", 2048, 16, 1) // BRAM bank
	var outs []*ir.Op
	for i := 0; i < 20; i++ {
		v := b.Load(a, nil)
		outs = append(outs, b.Op(ir.KindAdd, 16, v, p))
	}
	sum := b.ReduceTree(ir.KindAdd, 16, outs)
	call := b.Call(leaf, sum)
	b.Ret(call)
	s, err := hls.ScheduleModule(m, hls.DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	return rtl.Elaborate(hls.BindModule(s))
}

func quickOpts() Options {
	o := DefaultOptions()
	o.Moves = 5000
	return o
}

func TestPlaceBoundsAndLegality(t *testing.T) {
	nl := testNetlist(t)
	dev := fpga.XC7Z020()
	pl, err := Place(nl, dev, rand.New(rand.NewSource(1)), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range nl.Cells {
		p := pl.At(c)
		if !dev.InBounds(p) {
			t.Fatalf("cell %s placed out of bounds at %v", c.Name, p)
		}
		kind := dev.KindAt(p.X, p.Y)
		switch classify(c) {
		case classDSP:
			if kind != fpga.TileDSP {
				t.Errorf("DSP cell %s on %v tile", c.Name, kind)
			}
		case classBRAM:
			if kind != fpga.TileBRAM {
				t.Errorf("BRAM cell %s on %v tile", c.Name, kind)
			}
		case classCLB:
			if kind != fpga.TileCLB {
				t.Errorf("CLB cell %s on %v tile", c.Name, kind)
			}
		}
	}
}

func TestPlaceDeterministicPerSeed(t *testing.T) {
	nl := testNetlist(t)
	dev := fpga.XC7Z020()
	p1, err := Place(nl, dev, rand.New(rand.NewSource(7)), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Place(nl, dev, rand.New(rand.NewSource(7)), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Pos {
		if p1.Pos[i] != p2.Pos[i] {
			t.Fatalf("cell %d differs across identical seeds: %v vs %v", i, p1.Pos[i], p2.Pos[i])
		}
	}
	p3, err := Place(nl, dev, rand.New(rand.NewSource(8)), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range p1.Pos {
		if p1.Pos[i] == p3.Pos[i] {
			same++
		}
	}
	if same == len(p1.Pos) {
		t.Error("different seeds produced identical placements")
	}
}

func TestPlaceImprovesWirelength(t *testing.T) {
	nl := testNetlist(t)
	dev := fpga.XC7Z020()
	// Random baseline: initial() without annealing.
	optsNoAnneal := quickOpts()
	optsNoAnneal.Moves = 1
	base, err := Place(nl, dev, rand.New(rand.NewSource(3)), optsNoAnneal)
	if err != nil {
		t.Fatal(err)
	}
	annealed, err := Place(nl, dev, rand.New(rand.NewSource(3)), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if annealed.HPWL() >= base.HPWL() {
		t.Errorf("annealing did not improve HPWL: %v -> %v", base.HPWL(), annealed.HPWL())
	}
}

func TestPlaceEmptyNetlistFails(t *testing.T) {
	if _, err := Place(&rtl.Netlist{}, fpga.XC7Z020(), rand.New(rand.NewSource(1)), Options{}); err == nil {
		t.Fatal("empty netlist must fail")
	}
}

func TestRectDist(t *testing.T) {
	r := rect{x0: 2, y0: 3, x1: 5, y1: 8}
	cases := []struct {
		p    fpga.XY
		want int
	}{
		{fpga.XY{X: 3, Y: 4}, 0},
		{fpga.XY{X: 2, Y: 3}, 0},
		{fpga.XY{X: 0, Y: 4}, 2},
		{fpga.XY{X: 6, Y: 9}, 2},
		{fpga.XY{X: 0, Y: 0}, 5},
	}
	for _, c := range cases {
		if got := r.dist(c.p); got != c.want {
			t.Errorf("dist(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	if r.width() != 4 || r.height() != 6 {
		t.Error("rect dims wrong")
	}
}

func TestReflect(t *testing.T) {
	n := 10
	for v := -25; v < 35; v++ {
		got := reflect(v, n)
		if got < 0 || got >= n {
			t.Fatalf("reflect(%d, %d) = %d out of range", v, n, got)
		}
	}
	if reflect(3, 10) != 3 {
		t.Error("in-range value must be unchanged")
	}
	if reflect(-1, 10) != 1 || reflect(10, 10) != 8 {
		t.Error("boundary reflection wrong")
	}
	if reflect(5, 1) != 0 {
		t.Error("degenerate size must clamp to 0")
	}
}

// TestPartitionRegionsProperty: regions of the sorted functions tile the
// die without overlap and each function gets one.
func TestPartitionRegionsProperty(t *testing.T) {
	f := func(nFuncs uint8, seed int64) bool {
		n := 1 + int(nFuncs)%9
		rng := rand.New(rand.NewSource(seed))
		var funcs []*ir.Function
		areaOf := make(map[*ir.Function]float64)
		for i := 0; i < n; i++ {
			fn := &ir.Function{Name: string(rune('a' + i))}
			funcs = append(funcs, fn)
			areaOf[fn] = 1 + rng.Float64()*1000
		}
		die := rect{0, 0, 59, 109}
		out := make(map[*ir.Function]rect)
		partitionRegions(funcs, areaOf, die, out)
		if len(out) != n {
			return false
		}
		area := 0
		for _, r := range out {
			if r.x0 < 0 || r.y0 < 0 || r.x1 > 59 || r.y1 > 109 || r.x0 > r.x1 || r.y0 > r.y1 {
				return false
			}
			area += r.width() * r.height()
		}
		// Non-overlap + coverage <=> total area equals die area.
		return area == die.width()*die.height()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCellAreaFloor(t *testing.T) {
	c := &rtl.Cell{Res: hls.Resources{}}
	if cellArea(c) != 1 {
		t.Error("zero-resource cell must still occupy unit area")
	}
}

func TestPlaceContextCancellation(t *testing.T) {
	nl := testNetlist(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := PlaceContext(ctx, nl, fpga.XC7Z020(), rand.New(rand.NewSource(1)), quickOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestPlaceCapacityOverflow(t *testing.T) {
	nl := testNetlist(t)
	tiny := *fpga.XC7Z020()
	tiny.Cols, tiny.Rows = 1, 1
	tiny.DSPCols, tiny.BRAMCols = nil, nil
	_, err := Place(nl, &tiny, rand.New(rand.NewSource(1)), quickOpts())
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("got %v, want ErrCapacity", err)
	}
}

func TestPlaceCapacityFitsRealDevice(t *testing.T) {
	if err := checkCapacity(testNetlist(t), fpga.XC7Z020()); err != nil {
		t.Fatalf("real design rejected: %v", err)
	}
}
