// Package place implements a simulated-annealing global placer for the RTL
// netlist on the modeled FPGA fabric. The cost blends weighted half-
// perimeter wirelength, a bin-density penalty that spreads logic the way an
// analytic placer's density constraint would, and a cluster-attraction term
// that keeps each RTL module instance (HLS function) together — the reason
// de-inlining relieves congestion in the paper's case study.
//
// DSP-bearing cells are restricted to DSP columns and memory banks to
// block-RAM columns, reproducing the column-constrained placement the
// paper's Resource feature category reacts to.
package place

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/fpga"
	"repro/internal/ir"
	"repro/internal/rtl"
)

// ErrCapacity marks a netlist whose resource demand exceeds the device, so
// no legal placement exists. The flow layer maps it to
// flow.ErrPlacementOverflow.
var ErrCapacity = errors.New("place: design exceeds device capacity")

// Options tunes the annealer.
type Options struct {
	// Moves is the total number of SA moves; 0 selects 60 moves per cell
	// with a floor of 20,000.
	Moves int
	// DensityWeight scales the bin-overflow penalty (logic-unit^2 terms).
	DensityWeight float64
	// ClusterWeight scales the attraction of cells to their module region.
	ClusterWeight float64
	// BinSize is the density-bin edge in tiles.
	BinSize int
}

// DefaultOptions returns the tuning used by the experiments.
func DefaultOptions() Options {
	return Options{
		DensityWeight: 0.25,
		ClusterWeight: 2.0,
		BinSize:       4,
	}
}

// PlaceStats summarizes the annealing run that produced a Placement: how
// many moves were proposed and how many committed. Tracking them costs two
// integer increments per move and never feeds back into the anneal, so
// trajectories are unchanged.
type PlaceStats struct {
	// Moves is the annealing move budget that ran.
	Moves int
	// Accepted counts moves that were committed (improving moves plus
	// Metropolis-accepted uphill moves).
	Accepted int
}

// AcceptRate returns Accepted/Moves (zero when no moves ran).
func (s PlaceStats) AcceptRate() float64 {
	if s.Moves == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(s.Moves)
}

// Placement is the placer result: a tile coordinate per netlist cell.
type Placement struct {
	Dev *fpga.Device
	NL  *rtl.Netlist
	Pos []fpga.XY // indexed by cell ID

	// RegionCenter records the attraction point used for each module
	// instance, useful for diagnostics.
	RegionCenter map[*ir.Function]fpga.XY

	// Stats reports the annealer's move/accept counts for this run.
	Stats PlaceStats
}

// At returns the placed location of a cell.
func (p *Placement) At(c *rtl.Cell) fpga.XY { return p.Pos[c.ID] }

// HPWL returns the total weighted half-perimeter wirelength.
func (p *Placement) HPWL() float64 {
	total := 0.0
	for _, n := range p.NL.Nets {
		total += float64(n.Wires()) * float64(netHPWL(n, p.Pos))
	}
	return total
}

func netHPWL(n *rtl.Net, pos []fpga.XY) int {
	xmin, xmax := pos[n.Driver.ID].X, pos[n.Driver.ID].X
	ymin, ymax := pos[n.Driver.ID].Y, pos[n.Driver.ID].Y
	for _, s := range n.Sinks {
		q := pos[s.Cell.ID]
		if q.X < xmin {
			xmin = q.X
		}
		if q.X > xmax {
			xmax = q.X
		}
		if q.Y < ymin {
			ymin = q.Y
		}
		if q.Y > ymax {
			ymax = q.Y
		}
	}
	return (xmax - xmin) + (ymax - ymin)
}

// cellClass is the legal-location class of a cell.
type cellClass int

const (
	classCLB cellClass = iota
	classDSP
	classBRAM
)

func classify(c *rtl.Cell) cellClass {
	switch {
	case c.Res.BRAM > 0:
		// Only true block-RAM banks are column-constrained; completely
		// partitioned arrays become fabric registers and place anywhere.
		return classBRAM
	case c.Res.DSP > 0:
		return classDSP
	}
	return classCLB
}

// cellArea returns the logic-unit area used by the density model.
func cellArea(c *rtl.Cell) float64 {
	a := float64(c.Res.LUT) + 0.5*float64(c.Res.FF)
	if a < 1 {
		a = 1
	}
	return a
}

// Place runs the annealer. The rng makes the result deterministic for a
// given seed. It is PlaceContext without cancellation.
func Place(nl *rtl.Netlist, dev *fpga.Device, rng *rand.Rand, opts Options) (*Placement, error) {
	return PlaceContext(context.Background(), nl, dev, rng, opts)
}

// PlaceContext runs the annealer under a context: cancellation is checked
// between annealing sweeps, so a deadline or Ctrl-C terminates within a
// fraction of the move budget rather than after it. Netlists whose
// resource demand cannot fit the device fail fast with ErrCapacity before
// any annealing runs.
func PlaceContext(ctx context.Context, nl *rtl.Netlist, dev *fpga.Device, rng *rand.Rand, opts Options) (*Placement, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(nl.Cells) == 0 {
		return nil, fmt.Errorf("place: empty netlist")
	}
	if opts.BinSize <= 0 {
		opts.BinSize = 4
	}
	if opts.Moves <= 0 {
		opts.Moves = 200 * len(nl.Cells)
		if opts.Moves < 20000 {
			opts.Moves = 20000
		}
	}
	if err := checkCapacity(nl, dev); err != nil {
		return nil, err
	}
	st := newState(nl, dev, opts)
	st.initial(rng)
	if err := st.anneal(ctx, rng); err != nil {
		return nil, err
	}
	return &Placement{Dev: dev, NL: nl, Pos: st.pos, RegionCenter: st.regionCenter,
		Stats: PlaceStats{Moves: opts.Moves, Accepted: st.accepted}}, nil
}

// checkCapacity rejects netlists that cannot legally fit the device: more
// logic area than the CLB fabric holds, or more DSP/BRAM demand than the
// special columns provide.
func checkCapacity(nl *rtl.Netlist, dev *fpga.Device) error {
	var area, dsp, bram float64
	for _, c := range nl.Cells {
		area += cellArea(c)
		dsp += float64(c.Res.DSP)
		bram += float64(c.Res.BRAM)
	}
	clbTiles := 0
	for x := 0; x < dev.Cols; x++ {
		for y := 0; y < dev.Rows; y++ {
			if dev.KindAt(x, y) == fpga.TileCLB {
				clbTiles++
			}
		}
	}
	capArea := float64(clbTiles) * (float64(dev.TileLUT) + 0.5*float64(dev.TileFF))
	capDSP := float64(len(dev.DSPCols) * dev.Rows * dev.TileDSP)
	capBRAM := float64(len(dev.BRAMCols) * dev.Rows * dev.TileBRAM)
	switch {
	case area > capArea:
		return fmt.Errorf("%w: logic area %.0f > fabric capacity %.0f", ErrCapacity, area, capArea)
	case dsp > capDSP:
		return fmt.Errorf("%w: %d DSP slices > device %d", ErrCapacity, int(dsp), int(capDSP))
	case bram > capBRAM:
		return fmt.Errorf("%w: %d BRAM banks > device %d", ErrCapacity, int(bram), int(capBRAM))
	}
	return nil
}

// state carries the annealer's incremental bookkeeping.
type state struct {
	nl   *rtl.Netlist
	dev  *fpga.Device
	opts Options

	pos     []fpga.XY
	class   []cellClass
	area    []float64
	attract []rect // module region per cell; attraction is zero inside

	// Per-net state in flat parallel arrays (index = net): pin lists,
	// HPWL weights, committed boxes and the boxes pending from the last
	// moveDelta. Contiguous values keep the annealer's inner loop on a
	// few cache lines instead of chasing per-net heap objects.
	netCells [][]int
	weights  []float64
	boxes    []bbox
	pends    []bbox
	cellNets [][]int // net indices per cell
	binsX     int
	binsY     int
	binOcc    []float64
	binCap    []float64
	wirelen   float64
	density   float64
	cluster   float64
	clusterWt []float64

	regionCenter map[*ir.Function]fpga.XY

	// accepted counts committed annealing moves (see PlaceStats).
	accepted int
}

// bbox is a net bounding box annotated with the number of pins sitting on
// each of its four boundaries. The support counts are what make the classic
// incremental placer update O(1): a move only forces a rescan when it takes
// a boundary's sole supporting pin strictly inward. All arithmetic is on
// tile integers, so an incrementally maintained box is bit-identical to a
// from-scratch recompute and annealing trajectories are unchanged. int16
// coordinates (the die is 60x110 tiles) keep the whole box in 16 bytes so
// the pending-box writes on the hot path stay cheap.
type bbox struct {
	xmin, xmax, ymin, ymax int16
	// Pins currently sitting on each boundary (support counts).
	nxmin, nxmax, nymin, nymax int16
}

func (b *bbox) hpwl() float64 {
	return float64((b.xmax - b.xmin) + (b.ymax - b.ymin))
}

// computeBox scans the net's pins — with cell `moved` (when >= 0) taken at
// `np` instead of its committed location — producing the bounding box and
// its boundary support counts.
func computeBox(cells []int, pos []fpga.XY, moved int, np fpga.XY) bbox {
	p := pos[cells[0]]
	if cells[0] == moved {
		p = np
	}
	b := bbox{xmin: int16(p.X), xmax: int16(p.X), ymin: int16(p.Y), ymax: int16(p.Y),
		nxmin: 1, nxmax: 1, nymin: 1, nymax: 1}
	for _, ci := range cells[1:] {
		p := pos[ci]
		if ci == moved {
			p = np
		}
		x, y := int16(p.X), int16(p.Y)
		if x < b.xmin {
			b.xmin = x
			b.nxmin = 1
		} else if x == b.xmin {
			b.nxmin++
		}
		if x > b.xmax {
			b.xmax = x
			b.nxmax = 1
		} else if x == b.xmax {
			b.nxmax++
		}
		if y < b.ymin {
			b.ymin = y
			b.nymin = 1
		} else if y == b.ymin {
			b.nymin++
		}
		if y > b.ymax {
			b.ymax = y
			b.nymax = 1
		} else if y == b.ymax {
			b.nymax++
		}
	}
	return b
}

// axisMove updates one axis of a box for a pin moving o -> n, maintaining
// the boundary support counts. It reports false when the box cannot be
// updated in O(1) — the moved pin was a boundary's only support and moved
// strictly inward, so the next-innermost pin is unknown without a rescan.
func axisMove(min, max *int16, nmin, nmax *int16, o, n int16) bool {
	if o == n {
		return true
	}
	// Remove o from the boundaries it supports. When min == max every pin
	// shares the coordinate, so both counts are >= 2 and neither empties;
	// otherwise o can sit on at most one boundary with support 1.
	if o == *min {
		if *nmin == 1 {
			if n > *min {
				return false
			}
			// The moved pin re-establishes the min boundary further out
			// (n < min <= max, so the max side is untouched).
			*min = n
			return true
		}
		*nmin--
	}
	if o == *max {
		if *nmax == 1 {
			if n < *max {
				return false
			}
			*max = n
			return true
		}
		*nmax--
	}
	// Insert n.
	if n < *min {
		*min = n
		*nmin = 1
	} else if n == *min {
		*nmin++
	}
	if n > *max {
		*max = n
		*nmax = 1
	} else if n == *max {
		*nmax++
	}
	return true
}

// twoPinBox builds the box of a two-pin net from its pin coordinates,
// matching computeBox's output (boundary counts included) exactly.
func twoPinBox(ax, ay, bx, by int16) bbox {
	b := bbox{xmin: ax, xmax: ax, ymin: ay, ymax: ay, nxmin: 1, nxmax: 1, nymin: 1, nymax: 1}
	if bx < b.xmin {
		b.xmin = bx
	} else if bx > b.xmax {
		b.xmax = bx
	} else {
		b.nxmin = 2
		b.nxmax = 2
	}
	if by < b.ymin {
		b.ymin = by
	} else if by > b.ymax {
		b.ymax = by
	} else {
		b.nymin = 2
		b.nymax = 2
	}
	return b
}

// evalBox returns the net's box after moving cell ci from op to np: O(1)
// via the incremental boundary update in the common case, an O(pins) rescan
// only when a sole boundary pin moves inward.
func evalBox(box bbox, cells []int, pos []fpga.XY, ci int, op, np fpga.XY) bbox {
	if axisMove(&box.xmin, &box.xmax, &box.nxmin, &box.nxmax, int16(op.X), int16(np.X)) &&
		axisMove(&box.ymin, &box.ymax, &box.nymin, &box.nymax, int16(op.Y), int16(np.Y)) {
		return box
	}
	return computeBox(cells, pos, ci, np)
}

func newState(nl *rtl.Netlist, dev *fpga.Device, opts Options) *state {
	st := &state{
		nl:           nl,
		dev:          dev,
		opts:         opts,
		pos:          make([]fpga.XY, len(nl.Cells)),
		class:        make([]cellClass, len(nl.Cells)),
		area:         make([]float64, len(nl.Cells)),
		attract:      make([]rect, len(nl.Cells)),
		cellNets:     make([][]int, len(nl.Cells)),
		clusterWt:    make([]float64, len(nl.Cells)),
		regionCenter: make(map[*ir.Function]fpga.XY),
	}
	for _, c := range nl.Cells {
		st.class[c.ID] = classify(c)
		st.area[c.ID] = cellArea(c)
		st.clusterWt[c.ID] = math.Sqrt(st.area[c.ID])
	}
	for _, n := range nl.Nets {
		seen := map[int]bool{n.Driver.ID: true}
		cells := []int{n.Driver.ID}
		for _, s := range n.Sinks {
			if !seen[s.Cell.ID] {
				seen[s.Cell.ID] = true
				cells = append(cells, s.Cell.ID)
			}
		}
		if len(cells) < 2 {
			continue
		}
		idx := len(st.netCells)
		st.netCells = append(st.netCells, cells)
		st.weights = append(st.weights, float64(n.Wires()))
		for _, ci := range cells {
			st.cellNets[ci] = append(st.cellNets[ci], idx)
		}
	}
	st.boxes = make([]bbox, len(st.netCells))
	st.pends = make([]bbox, len(st.netCells))
	st.binsX = (dev.Cols + opts.BinSize - 1) / opts.BinSize
	st.binsY = (dev.Rows + opts.BinSize - 1) / opts.BinSize
	st.binOcc = make([]float64, st.binsX*st.binsY)
	st.binCap = make([]float64, st.binsX*st.binsY)
	perCLB := float64(dev.TileLUT) + 0.5*float64(dev.TileFF)
	for x := 0; x < dev.Cols; x++ {
		for y := 0; y < dev.Rows; y++ {
			if dev.KindAt(x, y) == fpga.TileCLB {
				st.binCap[st.binIdx(x, y)] += perCLB
			}
		}
	}
	return st
}

func (st *state) binIdx(x, y int) int {
	return (y/st.opts.BinSize)*st.binsX + x/st.opts.BinSize
}

// rect is an inclusive tile rectangle.
type rect struct {
	x0, y0, x1, y1 int
}

func (r rect) width() int  { return r.x1 - r.x0 + 1 }
func (r rect) height() int { return r.y1 - r.y0 + 1 }

// dist returns the Manhattan distance from p to the rectangle, zero when p
// lies inside it.
func (r rect) dist(p fpga.XY) int {
	d := 0
	if p.X < r.x0 {
		d += r.x0 - p.X
	} else if p.X > r.x1 {
		d += p.X - r.x1
	}
	if p.Y < r.y0 {
		d += r.y0 - p.Y
	} else if p.Y > r.y1 {
		d += p.Y - r.y1
	}
	return d
}

func (r rect) center() fpga.XY {
	return fpga.XY{X: (r.x0 + r.x1) / 2, Y: (r.y0 + r.y1) / 2}
}

// partitionRegions recursively bisects the die so every module instance
// gets a rectangle proportional to its cell area, keeping aspect ratios
// sane (the floorplanning a hierarchy-aware placer performs implicitly).
func partitionRegions(funcs []*ir.Function, areaOf map[*ir.Function]float64, r rect, out map[*ir.Function]rect) {
	if len(funcs) == 0 {
		return
	}
	if len(funcs) == 1 {
		out[funcs[0]] = r
		return
	}
	total := 0.0
	for _, f := range funcs {
		total += areaOf[f]
	}
	// Greedy half-split by area over the sorted list.
	accum, cut := 0.0, 0
	for i, f := range funcs {
		if accum >= total/2 && i > 0 {
			cut = i
			break
		}
		accum += areaOf[f]
		cut = i + 1
	}
	if cut <= 0 || cut >= len(funcs) {
		cut = len(funcs) / 2
		accum = 0
		for _, f := range funcs[:cut] {
			accum += areaOf[f]
		}
	}
	frac := accum / total
	if frac < 0.1 {
		frac = 0.1
	}
	if frac > 0.9 {
		frac = 0.9
	}
	a, b := r, r
	if r.width() >= r.height() {
		mid := r.x0 + int(frac*float64(r.width()))
		if mid <= r.x0 {
			mid = r.x0 + 1
		}
		if mid > r.x1 {
			mid = r.x1
		}
		a.x1 = mid - 1
		b.x0 = mid
	} else {
		mid := r.y0 + int(frac*float64(r.height()))
		if mid <= r.y0 {
			mid = r.y0 + 1
		}
		if mid > r.y1 {
			mid = r.y1
		}
		a.y1 = mid - 1
		b.y0 = mid
	}
	partitionRegions(funcs[:cut], areaOf, a, out)
	partitionRegions(funcs[cut:], areaOf, b, out)
}

// initial assigns module regions by recursive bisection and scatters cells
// inside them. Regions are sized by cell area plus pin-wiring demand, the
// way congestion-driven floorplanning gives interconnect-heavy blocks more
// room than their logic alone would claim.
func (st *state) initial(rng *rand.Rand) {
	funcs := st.nl.Mod.LiveFuncs()
	areaOf := make(map[*ir.Function]float64)
	for _, c := range st.nl.Cells {
		areaOf[c.Func] += st.area[c.ID]
	}
	for ni, cells := range st.netCells {
		for _, ci := range cells {
			areaOf[st.nl.Cells[ci].Func] += st.weights[ni]
		}
	}
	sorted := append([]*ir.Function(nil), funcs...)
	sort.Slice(sorted, func(i, j int) bool {
		if areaOf[sorted[i]] != areaOf[sorted[j]] {
			return areaOf[sorted[i]] > areaOf[sorted[j]]
		}
		return sorted[i].Name < sorted[j].Name
	})
	regions := make(map[*ir.Function]rect, len(sorted))
	die := rect{0, 0, st.dev.Cols - 1, st.dev.Rows - 1}
	partitionRegions(sorted, areaOf, die, regions)

	for _, f := range funcs {
		rg, ok := regions[f]
		if !ok {
			rg = die
		}
		st.regionCenter[f] = rg.center()
		for _, c := range st.nl.Cells {
			if c.Func != f {
				continue
			}
			st.attract[c.ID] = rg
			y := rg.y0 + rng.Intn(rg.height())
			x := st.legalX(c.ID, rg.x0+rng.Intn(rg.width()))
			st.pos[c.ID] = fpga.XY{X: x, Y: y}
		}
	}
	// Full cost from scratch.
	st.wirelen = 0
	for ni := range st.boxes {
		st.boxes[ni] = computeBox(st.netCells[ni], st.pos, -1, fpga.XY{})
		st.wirelen += st.weights[ni] * st.boxes[ni].hpwl()
	}
	for i := range st.binOcc {
		st.binOcc[i] = 0
	}
	st.cluster = 0
	for _, c := range st.nl.Cells {
		st.binOcc[st.binIdx(st.pos[c.ID].X, st.pos[c.ID].Y)] += st.area[c.ID]
		st.cluster += st.clusterWt[c.ID] * float64(st.attract[c.ID].dist(st.pos[c.ID]))
	}
	st.density = 0
	for i := range st.binOcc {
		st.density += overflow2(st.binOcc[i], st.binCap[i])
	}
}

func overflow2(occ, cap float64) float64 {
	d := occ - cap
	if d <= 0 {
		return 0
	}
	return d * d
}

// legalX snaps a column to a legal one for the cell's class.
func (st *state) legalX(cell int, x int) int {
	if x < 0 {
		x = 0
	}
	if x >= st.dev.Cols {
		x = st.dev.Cols - 1
	}
	switch st.class[cell] {
	case classDSP:
		return st.dev.DSPColNearest(x)
	case classBRAM:
		return st.dev.BRAMColNearest(x)
	}
	// CLB cells avoid special columns: step off them.
	for st.dev.KindAt(x, 0) != fpga.TileCLB {
		x++
		if x >= st.dev.Cols {
			x = 0
		}
	}
	return x
}

// moveDelta evaluates the cost change of moving cell ci to np, without
// committing. Each affected net's box is updated incrementally (O(1) unless
// a sole boundary pin moves inward) and cached in netBox.pend, so a commit
// of the same move applies the boxes instead of recomputing the nets. The
// per-net float expression is unchanged and the boxes are exact integers,
// so deltas — and with them the annealing trajectory — are bit-identical
// to the recompute-per-move reference.
func (st *state) moveDelta(ci int, np fpga.XY) float64 {
	op := st.pos[ci]
	ox, nx := int16(op.X), int16(np.X)
	oy, ny := int16(op.Y), int16(np.Y)
	dWL := 0.0
	for _, ni := range st.cellNets[ci] {
		b := st.boxes[ni]
		old := b.hpwl()
		if cells := st.netCells[ni]; len(cells) == 2 {
			// Two-pin net: the box is just the span to the other pin —
			// identical to computeBox's scan, without the boundary dance.
			oi := cells[0]
			if oi == ci {
				oi = cells[1]
			}
			q := st.pos[oi]
			b = twoPinBox(int16(q.X), int16(q.Y), nx, ny)
		} else if !(axisMove(&b.xmin, &b.xmax, &b.nxmin, &b.nxmax, ox, nx) &&
			axisMove(&b.ymin, &b.ymax, &b.nymin, &b.nymax, oy, ny)) {
			b = computeBox(cells, st.pos, ci, np)
		}
		st.pends[ni] = b
		dWL += st.weights[ni] * (b.hpwl() - old)
	}
	ob, nbn := st.binIdx(op.X, op.Y), st.binIdx(np.X, np.Y)
	dDen := 0.0
	if ob != nbn {
		a := st.area[ci]
		dDen = overflow2(st.binOcc[ob]-a, st.binCap[ob]) - overflow2(st.binOcc[ob], st.binCap[ob]) +
			overflow2(st.binOcc[nbn]+a, st.binCap[nbn]) - overflow2(st.binOcc[nbn], st.binCap[nbn])
	}
	dClu := st.clusterWt[ci] * float64(st.attract[ci].dist(np)-st.attract[ci].dist(op))
	return dWL + st.opts.DensityWeight*dDen + st.opts.ClusterWeight*dClu
}

// commit applies the move evaluated by the immediately preceding
// moveDelta(ci, np) call: every affected net adopts its pending box, so no
// net is recomputed a second time. st.wirelen is diagnostic bookkeeping
// (never read by the annealer), updated from the same cached boxes.
func (st *state) commit(ci int, np fpga.XY, delta float64) {
	op := st.pos[ci]
	ob, nbn := st.binIdx(op.X, op.Y), st.binIdx(np.X, np.Y)
	st.pos[ci] = np
	for _, ni := range st.cellNets[ci] {
		st.wirelen += st.weights[ni] * (st.pends[ni].hpwl() - st.boxes[ni].hpwl())
		st.boxes[ni] = st.pends[ni]
	}
	if ob != nbn {
		a := st.area[ci]
		st.density += overflow2(st.binOcc[ob]-a, st.binCap[ob]) - overflow2(st.binOcc[ob], st.binCap[ob]) +
			overflow2(st.binOcc[nbn]+a, st.binCap[nbn]) - overflow2(st.binOcc[nbn], st.binCap[nbn])
		st.binOcc[ob] -= a
		st.binOcc[nbn] += a
	}
	st.cluster += st.clusterWt[ci] * float64(st.attract[ci].dist(np)-st.attract[ci].dist(op))
	_ = delta
}

// cancelCheckEvery is how many annealing moves run between context
// checks: frequent enough that cancellation lands within milliseconds,
// rare enough that the check never shows up in a profile.
const cancelCheckEvery = 2048

func (st *state) anneal(ctx context.Context, rng *rand.Rand) error {
	n := len(st.nl.Cells)
	moves := st.opts.Moves
	// Seed temperature from the spread of random-move deltas.
	var sum, sum2 float64
	samples := 64
	for i := 0; i < samples; i++ {
		ci := rng.Intn(n)
		np := st.randomTarget(rng, ci, st.dev.Cols)
		d := st.moveDelta(ci, np)
		sum += d
		sum2 += d * d
	}
	mean := sum / float64(samples)
	sigma := math.Sqrt(math.Max(sum2/float64(samples)-mean*mean, 1))
	temp := 2 * sigma
	window := float64(maxInt(st.dev.Cols, st.dev.Rows))
	cool := math.Pow(0.005, 1/float64(maxInt(moves, 1))) // end at 0.5% of T0

	for i := 0; i < moves; i++ {
		if i%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ci := rng.Intn(n)
		w := int(window)
		if w < 2 {
			w = 2
		}
		np := st.randomTarget(rng, ci, w)
		if np == st.pos[ci] {
			continue
		}
		d := st.moveDelta(ci, np)
		if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
			st.commit(ci, np, d)
			st.accepted++
		}
		temp *= cool
		window = math.Max(2, window*math.Pow(cool, 0.5))
	}
	return nil
}

// randomTarget proposes a legal location within a window around the cell.
// Out-of-bounds proposals reflect off the die edge rather than clamping,
// which would otherwise pile cells into the boundary rows and columns.
func (st *state) randomTarget(rng *rand.Rand, ci, window int) fpga.XY {
	cur := st.pos[ci]
	x := reflect(cur.X+rng.Intn(2*window+1)-window, st.dev.Cols)
	y := reflect(cur.Y+rng.Intn(2*window+1)-window, st.dev.Rows)
	return fpga.XY{X: st.legalX(ci, x), Y: y}
}

// reflect folds v into [0, n) by mirroring at the boundaries.
func reflect(v, n int) int {
	if n <= 1 {
		return 0
	}
	period := 2 * (n - 1)
	v %= period
	if v < 0 {
		v += period
	}
	if v >= n {
		v = period - v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
