package place

import (
	"math/rand"
	"testing"

	"repro/internal/fpga"
)

// BenchmarkPlace times one full annealing run of the test design with the
// incremental bounding-box kernel ("incremental") against the frozen
// pre-optimization kernel kept in equiv_test.go ("reference"). The
// equivalence tests prove the two produce byte-identical placements, so the
// ns/op ratio is the speedup of the placer tentpole. Run with -benchmem:
// the incremental kernel's inner loop allocates nothing.
func BenchmarkPlace(b *testing.B) {
	nl := testNetlist(b)
	dev := fpga.XC7Z020()
	opts := DefaultOptions()
	opts.Moves = 20000

	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Place(nl, dev, rand.New(rand.NewSource(1)), opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			referencePlace(b, nl, dev, 1, opts)
		}
	})
}

// BenchmarkMoveDelta isolates the per-move cost evaluation — the single
// hottest call of the flow (placer profiles put it above 40 % before the
// rewrite). Steady state it must not allocate.
func BenchmarkMoveDelta(b *testing.B) {
	nl := testNetlist(b)
	dev := fpga.XC7Z020()
	rng := rand.New(rand.NewSource(1))
	st := newState(nl, dev, DefaultOptions())
	st.initial(rng)
	n := len(nl.Cells)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ci := i % n
		np := st.randomTarget(rng, ci, dev.Cols)
		st.moveDelta(ci, np)
	}
}
