package place

// Equivalence suite for the incremental-bounding-box fast path: a frozen
// copy of the pre-optimization kernels — recompute every affected net's box
// from scratch on every proposed move AND again on every commit — drives
// the same annealing loop, and the resulting placements must be
// byte-identical to the optimized placer for fixed seeds. The reference is
// deliberately duplicated here (not shared with production code) so it
// stays a golden baseline: if an optimization ever changes a trajectory,
// these tests fail instead of silently shifting every congestion label
// downstream.

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/fpga"
	"repro/internal/hls"
	"repro/internal/rtl"
)

// refComputeBox is the pre-optimization net recompute, kept verbatim (the
// boundary support counts did not exist; the reference never reads them).
func refComputeBox(cells []int, pos []fpga.XY) bbox {
	first := pos[cells[0]]
	b := bbox{xmin: int16(first.X), xmax: int16(first.X), ymin: int16(first.Y), ymax: int16(first.Y)}
	for _, ci := range cells[1:] {
		p := pos[ci]
		x, y := int16(p.X), int16(p.Y)
		if x < b.xmin {
			b.xmin = x
		}
		if x > b.xmax {
			b.xmax = x
		}
		if y < b.ymin {
			b.ymin = y
		}
		if y > b.ymax {
			b.ymax = y
		}
	}
	return b
}

// refMoveDelta is the pre-optimization moveDelta: copy the box, flip the
// position, recompute the whole net.
func refMoveDelta(st *state, ci int, np fpga.XY) float64 {
	op := st.pos[ci]
	dWL := 0.0
	for _, ni := range st.cellNets[ci] {
		old := st.boxes[ni].hpwl()
		st.pos[ci] = np
		b2 := refComputeBox(st.netCells[ni], st.pos)
		st.pos[ci] = op
		dWL += st.weights[ni] * (b2.hpwl() - old)
	}
	ob, nbn := st.binIdx(op.X, op.Y), st.binIdx(np.X, np.Y)
	dDen := 0.0
	if ob != nbn {
		a := st.area[ci]
		dDen = overflow2(st.binOcc[ob]-a, st.binCap[ob]) - overflow2(st.binOcc[ob], st.binCap[ob]) +
			overflow2(st.binOcc[nbn]+a, st.binCap[nbn]) - overflow2(st.binOcc[nbn], st.binCap[nbn])
	}
	dClu := st.clusterWt[ci] * float64(st.attract[ci].dist(np)-st.attract[ci].dist(op))
	return dWL + st.opts.DensityWeight*dDen + st.opts.ClusterWeight*dClu
}

// refCommit is the pre-optimization commit: recompute every affected net a
// second time.
func refCommit(st *state, ci int, np fpga.XY) {
	op := st.pos[ci]
	ob, nbn := st.binIdx(op.X, op.Y), st.binIdx(np.X, np.Y)
	st.pos[ci] = np
	for _, ni := range st.cellNets[ci] {
		old := st.weights[ni] * st.boxes[ni].hpwl()
		st.boxes[ni] = refComputeBox(st.netCells[ni], st.pos)
		st.wirelen += st.weights[ni]*st.boxes[ni].hpwl() - old
	}
	if ob != nbn {
		a := st.area[ci]
		st.density += overflow2(st.binOcc[ob]-a, st.binCap[ob]) - overflow2(st.binOcc[ob], st.binCap[ob]) +
			overflow2(st.binOcc[nbn]+a, st.binCap[nbn]) - overflow2(st.binOcc[nbn], st.binCap[nbn])
		st.binOcc[ob] -= a
		st.binOcc[nbn] += a
	}
	st.cluster += st.clusterWt[ci] * float64(st.attract[ci].dist(np)-st.attract[ci].dist(op))
}

// refAnneal mirrors state.anneal with the reference kernels, consuming the
// rng in exactly the same sequence.
func refAnneal(st *state, ctx context.Context, rng *rand.Rand) error {
	n := len(st.nl.Cells)
	moves := st.opts.Moves
	var sum, sum2 float64
	samples := 64
	for i := 0; i < samples; i++ {
		ci := rng.Intn(n)
		np := st.randomTarget(rng, ci, st.dev.Cols)
		d := refMoveDelta(st, ci, np)
		sum += d
		sum2 += d * d
	}
	mean := sum / float64(samples)
	sigma := math.Sqrt(math.Max(sum2/float64(samples)-mean*mean, 1))
	temp := 2 * sigma
	window := float64(maxInt(st.dev.Cols, st.dev.Rows))
	cool := math.Pow(0.005, 1/float64(maxInt(moves, 1)))

	for i := 0; i < moves; i++ {
		if i%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ci := rng.Intn(n)
		w := int(window)
		if w < 2 {
			w = 2
		}
		np := st.randomTarget(rng, ci, w)
		if np == st.pos[ci] {
			continue
		}
		d := refMoveDelta(st, ci, np)
		if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
			refCommit(st, ci, np)
		}
		temp *= cool
		window = math.Max(2, window*math.Pow(cool, 0.5))
	}
	return nil
}

// referencePlace is PlaceContext with the pre-optimization kernels.
func referencePlace(t testing.TB, nl *rtl.Netlist, dev *fpga.Device, seed int64, opts Options) *Placement {
	t.Helper()
	if opts.BinSize <= 0 {
		opts.BinSize = 4
	}
	if opts.Moves <= 0 {
		opts.Moves = 200 * len(nl.Cells)
		if opts.Moves < 20000 {
			opts.Moves = 20000
		}
	}
	rng := rand.New(rand.NewSource(seed))
	st := newState(nl, dev, opts)
	st.initial(rng)
	if err := refAnneal(st, context.Background(), rng); err != nil {
		t.Fatal(err)
	}
	return &Placement{Dev: dev, NL: nl, Pos: st.pos, RegionCenter: st.regionCenter}
}

func comparePlacements(t *testing.T, name string, got, want *Placement) {
	t.Helper()
	if len(got.Pos) != len(want.Pos) {
		t.Fatalf("%s: %d positions, reference has %d", name, len(got.Pos), len(want.Pos))
	}
	for i := range got.Pos {
		if got.Pos[i] != want.Pos[i] {
			t.Fatalf("%s: cell %d placed at %v, reference %v — trajectory diverged",
				name, i, got.Pos[i], want.Pos[i])
		}
	}
}

// TestPlaceEquivalentToReference: the optimized placer must reproduce the
// reference placement bit-for-bit across seeds on the unit-test design.
func TestPlaceEquivalentToReference(t *testing.T) {
	nl := testNetlist(t)
	dev := fpga.XC7Z020()
	opts := DefaultOptions()
	opts.Moves = 6000
	for _, seed := range []int64{1, 7, 42, 104730} {
		got, err := Place(nl, dev, rand.New(rand.NewSource(seed)), opts)
		if err != nil {
			t.Fatal(err)
		}
		want := referencePlace(t, nl, dev, seed, opts)
		comparePlacements(t, "unit design", got, want)
	}
}

// TestPlaceEquivalentToReferencePaperDesign runs the equivalence on a real
// training implementation (the seeds the dataset build uses), at a reduced
// but non-trivial move budget.
func TestPlaceEquivalentToReferencePaperDesign(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-design equivalence is slow")
	}
	m := bench.DigitSpam()
	s, err := hls.ScheduleModule(m, hls.DefaultClock())
	if err != nil {
		t.Fatal(err)
	}
	nl := rtl.Elaborate(hls.BindModule(s))
	dev := fpga.XC7Z020()
	opts := DefaultOptions()
	opts.Moves = 12000
	for _, seed := range []int64{1, 7920} {
		got, err := Place(nl, dev, rand.New(rand.NewSource(seed)), opts)
		if err != nil {
			t.Fatal(err)
		}
		want := referencePlace(t, nl, dev, seed, opts)
		comparePlacements(t, "digit+spam", got, want)
	}
}

// TestEvalMoveMatchesRecompute property-checks the incremental boundary
// update against a from-scratch recompute over random pin sets and moves.
func TestEvalMoveMatchesRecompute(t *testing.T) {
	f := func(seed int64, nPins uint8, span uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nPins)%12
		w := 1 + int(span)%16
		pos := make([]fpga.XY, n)
		cells := make([]int, n)
		for i := range pos {
			cells[i] = i
			pos[i] = fpga.XY{X: rng.Intn(w), Y: rng.Intn(w)}
		}
		box := computeBox(cells, pos, -1, fpga.XY{})
		for trial := 0; trial < 64; trial++ {
			ci := rng.Intn(n)
			np := fpga.XY{X: rng.Intn(w), Y: rng.Intn(w)}
			got := evalBox(box, cells, pos, ci, pos[ci], np)
			want := computeBox(cells, pos, ci, np)
			if got != want {
				t.Logf("move cell %d %v->%v: got %+v want %+v", ci, pos[ci], np, got, want)
				return false
			}
			// Commit the move half the time to exercise box evolution.
			if rng.Intn(2) == 0 {
				pos[ci] = np
				box = got
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestComputeBoxCounts pins the boundary-support bookkeeping on a known
// configuration, including the degenerate all-pins-on-one-tile net.
func TestComputeBoxCounts(t *testing.T) {
	pos := []fpga.XY{{X: 1, Y: 2}, {X: 5, Y: 2}, {X: 1, Y: 8}, {X: 3, Y: 4}}
	b := computeBox([]int{0, 1, 2, 3}, pos, -1, fpga.XY{})
	want := bbox{xmin: 1, xmax: 5, ymin: 2, ymax: 8, nxmin: 2, nxmax: 1, nymin: 2, nymax: 1}
	if b != want {
		t.Fatalf("got %+v want %+v", b, want)
	}
	same := []fpga.XY{{X: 4, Y: 4}, {X: 4, Y: 4}, {X: 4, Y: 4}}
	b = computeBox([]int{0, 1, 2}, same, -1, fpga.XY{})
	if b.nxmin != 3 || b.nxmax != 3 || b.nymin != 3 || b.nymax != 3 {
		t.Fatalf("degenerate net counts wrong: %+v", b)
	}
}
