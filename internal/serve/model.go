package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Model is one loaded predictor artifact plus the metadata /healthz
// reports. Models are immutable once published: a hot-reload builds and
// validates a complete new Model before the atomic pointer swap, and the
// old one keeps serving every batch formed before the swap.
type Model struct {
	// Pred is the validated predictor. Predictor serving paths are
	// concurrency-safe (pooled scratch, no per-call state), so one Model
	// is shared by every batch.
	Pred *core.Predictor
	// Path is the artifact file the model was loaded from.
	Path string
	// Generation counts loads on this server, starting at 1; /healthz
	// exposes it so reload scripts can confirm a swap happened.
	Generation uint64
	// LoadedAt stamps when the load completed.
	LoadedAt time.Time
}

// modelSlot is the server's hot-reload point: an atomic pointer the
// request path loads once per batch and Reload swaps after full
// validation. Swap-after-validate is what makes reloads downtime-free —
// there is no intermediate state a concurrent reader can observe.
type modelSlot struct {
	cur atomic.Pointer[Model]
	gen atomic.Uint64
}

// Load returns the serving model, or nil when none has been published.
func (s *modelSlot) Load() *Model { return s.cur.Load() }

// Publish installs a freshly loaded predictor, assigning it the next
// generation, and returns the published Model.
func (s *modelSlot) Publish(p *core.Predictor, path string) *Model {
	m := &Model{Pred: p, Path: path, Generation: s.gen.Add(1), LoadedAt: time.Now()}
	s.cur.Store(m)
	return m
}

// Reload loads, validates and publishes the artifact at path. On any
// error the slot is untouched: the previous model keeps serving and the
// error describes why the new artifact was rejected. core.LoadPredictorFile
// is the same validated load path server startup uses, so a reload can
// never admit an artifact startup would have refused.
func (s *modelSlot) Reload(path string) (*Model, error) {
	p, err := core.LoadPredictorFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reload rejected: %w", err)
	}
	return s.Publish(p, path), nil
}
