// Package serve is the congestion predictor's serving layer: a long-lived
// HTTP service that loads SavePredictor artifacts and answers per-op V/H
// congestion predictions to many concurrent clients as fast as the
// hardware allows.
//
// The performance machinery, bottom to top:
//
//   - Request payloads decode into pooled ml.Matrix / slice buffers
//     (sync.Pool); a warmed server handles the whole /predict path —
//     admit, decode, coalesce, predict, encode — without allocating.
//   - Cross-request micro-batch coalescing: pending predictions are
//     collected for a bounded window (Options.Window, a few hundred µs)
//     or until a row cap (Options.MaxBatch), then scored with ONE
//     zero-alloc core.Predictor.PredictBatchInto call. Batch-of-batches
//     beats per-request predict because the scaler and the flattened
//     GBRT forest amortize their setup and stay hot in cache across the
//     whole batch. The batcher also flushes early the moment every
//     admitted request is already in the batch (the admission semaphore
//     proves no companion can arrive), so closed-loop clients never pay
//     the window — only genuinely concurrent traffic does.
//   - Multi-core scale-out: the server runs Options.Shards independent
//     batcher shards (default GOMAXPROCS), each owning its own admission
//     semaphore, submit queue, window timer and batch scratch. Requests
//     route to a shard by a pooled affinity hint with a round-robin
//     fallback under load, so the hot path shares no lock, channel or
//     cache line between shards — throughput scales with cores instead
//     of serializing on one batcher goroutine. Predictions are
//     byte-identical across shard counts: sharding changes which rows
//     share a PredictBatchInto call, never what a row scores.
//   - Admission control: a max-inflight semaphore per shard sheds excess
//     load with a fast 429 instead of queueing without bound; a request
//     is shed only when every shard is saturated.
//   - Hot reload: models live behind one atomic pointer shared by all
//     shards; SIGHUP or POST /reload loads and fully validates the
//     artifact, then swaps. Each batch loads the pointer exactly once, so
//     a batch is always scored by a single generation; an invalid
//     artifact is rejected with zero downtime.
//   - Graceful drain: Stop admits no new work, then retires the shards in
//     fixed index order — acquiring every admission slot of a shard
//     proves no request is between admission and submit there, after
//     which its batcher flushes its last window and exits.
//
// Every stage reports into the internal/obs registry. The request-path
// series (request/shed/error/prediction counters, latency and batch-rows
// histograms, the inflight gauge) are striped per shard onto separate
// cache lines and merged at Snapshot, so enabling metrics does not
// re-serialize the cores the sharding just separated.
package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Serving errors. The HTTP layer maps them to statuses; embedded callers
// match with errors.Is.
var (
	// ErrShed marks a request rejected by admission control (HTTP 429).
	ErrShed = errors.New("serve: shed: too many requests in flight")
	// ErrNoModel marks a request arriving before any model was loaded
	// (HTTP 503).
	ErrNoModel = errors.New("serve: no model loaded")
	// ErrDraining marks a request arriving during shutdown (HTTP 503).
	ErrDraining = errors.New("serve: draining")
)

// Options tunes the server. The zero value of each field selects the
// default noted on it.
type Options struct {
	// MaxBatch caps the rows of one coalesced batch (default 256).
	MaxBatch int
	// Window is how long a shard's batcher holds an open batch waiting
	// for companions. The zero value selects the default 200µs; a
	// negative value means "never wait" — a batch still coalesces
	// whatever is already queued, but closes immediately.
	Window time.Duration
	// Shards is the number of independent batcher shards (default
	// GOMAXPROCS). Each shard owns its own admission slots, submit queue,
	// window timer and batch scratch; coalescing happens within a shard.
	Shards int
	// MaxInflight is the total admission cap across all shards: requests
	// beyond it are shed with 429 (default 4×GOMAXPROCS, min 16). It is
	// rounded up to a multiple of Shards so every shard gets the same
	// slot count — the per-shard semaphore is what keeps the allQueued
	// early-flush proof local to a shard.
	MaxInflight int
	// MaxBodyBytes bounds one request body (default 16 MiB).
	MaxBodyBytes int64
	// Obs receives request metrics; nil disables observation.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.Window == 0 {
		o.Window = 200 * time.Microsecond
	}
	if o.Window < 0 {
		o.Window = 0
	}
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards < 1 {
			o.Shards = 1
		}
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4 * runtime.GOMAXPROCS(0)
		if o.MaxInflight < 16 {
			o.MaxInflight = 16
		}
	}
	// Round the cap up to a whole number of slots per shard.
	perShard := (o.MaxInflight + o.Shards - 1) / o.Shards
	o.MaxInflight = perShard * o.Shards
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 16 << 20
	}
	return o
}

// shardMetrics holds one shard's resolved metric handles. The request-path
// series are that shard's stripes of the registry's striped metrics —
// resolved once at construction, so the hot path pays exactly one
// un-contended atomic per event — and every field no-ops when observation
// is off.
type shardMetrics struct {
	requests, shed, errs *obs.Counter
	predictions, batches *obs.Counter
	batchRows, latency   *obs.Histogram
	inflight             *obs.Gauge
}

func newShardMetrics(o *obs.Observer, shard, shards int) shardMetrics {
	r := o.Metrics()
	return shardMetrics{
		requests:    r.StripedCounter(obs.MetricServeRequests, shards).Stripe(shard),
		shed:        r.StripedCounter(obs.MetricServeShed, shards).Stripe(shard),
		errs:        r.StripedCounter(obs.MetricServeErrors, shards).Stripe(shard),
		predictions: r.StripedCounter(obs.MetricServePredictions, shards).Stripe(shard),
		batches:     r.StripedCounter(obs.MetricServeBatches, shards).Stripe(shard),
		batchRows:   r.StripedHistogram(obs.MetricServeBatchRows, obs.BatchRowsBuckets, shards).Stripe(shard),
		latency:     r.StripedHistogram(obs.MetricServeLatencyUs, obs.LatencyMicrosBuckets, shards).Stripe(shard),
		inflight:    r.StripedGauge(obs.MetricServeInflight, shards).Stripe(shard),
	}
}

// shard is one independent coalescing lane: its own admission semaphore,
// submit queue, batcher goroutine and metric stripes. Nothing on a
// shard's request path touches another shard's state.
type shard struct {
	idx int
	srv *Server
	// sem is this shard's slice of the admission cap: one slot per
	// in-flight request routed here. A request holds its slot from
	// admission until after its response is encoded, which is what makes
	// len(sem) an upper bound on the jobs that can still join this
	// shard's open batch (see allQueued) and what lets Stop prove the
	// shard quiescent by acquiring every slot.
	sem    chan struct{}
	submit chan *job
	done   chan struct{}
	met    shardMetrics
}

// Server is the prediction service core. Construct with New, publish a
// model with LoadModel (or Reload), mount Handler on an http.Server, and
// retire with Stop.
type Server struct {
	opts      Options
	obs       *obs.Observer
	models    modelSlot
	modelPath atomic.Pointer[string]

	// shards are the independent batcher lanes; see Options.Shards.
	shards []*shard
	// reload/occupancy handles are off the request path and stay plain.
	reloads, reloadErrs *obs.Counter
	occupancy           *obs.Gauge

	draining atomic.Bool
	stopOnce sync.Once
	stopErr  error
}

// New starts one coalescing loop per shard and returns a server with no
// model loaded (requests answer 503 until LoadModel succeeds).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:       opts,
		obs:        opts.Obs,
		reloads:    opts.Obs.Metrics().Counter(obs.MetricServeReloads),
		reloadErrs: opts.Obs.Metrics().Counter(obs.MetricServeReloadErrors),
		occupancy:  opts.Obs.Metrics().Gauge(obs.MetricServeBatchOccupancy),
	}
	perShard := opts.MaxInflight / opts.Shards
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		sh := &shard{
			idx:    i,
			srv:    s,
			sem:    make(chan struct{}, perShard),
			submit: make(chan *job, perShard),
			done:   make(chan struct{}),
			met:    newShardMetrics(opts.Obs, i, opts.Shards),
		}
		s.shards[i] = sh
		go sh.batchLoop()
	}
	return s
}

// Options returns the resolved (defaulted) options the server runs with.
func (s *Server) Options() Options { return s.opts }

// Model returns the currently serving model (nil before the first load).
func (s *Server) Model() *Model { return s.models.Load() }

// LoadModel loads, validates and publishes the artifact at path, which
// also becomes the path Reload re-reads. The publish is one atomic
// pointer store observed by every shard: no two batches formed after it
// can disagree about the generation.
func (s *Server) LoadModel(path string) (*Model, error) {
	m, err := s.models.Reload(path)
	if err != nil {
		s.reloadErrs.Inc()
		return nil, err
	}
	s.modelPath.Store(&path)
	s.reloads.Inc()
	if l := s.obs.Logger(); l != nil {
		l.Info("model loaded", "path", path, "generation", m.Generation, "kind", m.Pred.Kind.String())
	}
	return m, nil
}

// Reload re-reads the artifact last given to LoadModel and swaps it in
// atomically. On error the previous model keeps serving untouched.
func (s *Server) Reload() (*Model, error) {
	p := s.modelPath.Load()
	if p == nil {
		return nil, fmt.Errorf("serve: reload: no model path configured")
	}
	return s.LoadModel(*p)
}

// admit routes a request to a shard: first the job's pooled affinity hint
// (jobs live in a per-P sync.Pool, so a core keeps landing on the same
// shard — its batcher, its warm buffers), then every other shard once,
// round-robin from the hint. A successful pick holds one slot of that
// shard's semaphore and updates the hint; nil means every shard is
// saturated and the request must shed. The fallback probes are
// non-blocking, so all-shards-full is a fast 429, never a wait.
func (s *Server) admit(j *job) *shard {
	n := len(s.shards)
	h := int(uint32(j.shard)) % n
	sh := s.shards[h]
	select {
	case sh.sem <- struct{}{}:
		return sh
	default:
	}
	for i := 1; i < n; i++ {
		k := h + i
		if k >= n {
			k -= n
		}
		sh = s.shards[k]
		select {
		case sh.sem <- struct{}{}:
			j.shard = int32(k)
			return sh
		default:
		}
	}
	return nil
}

// ServeBytes runs the whole /predict hot path on one raw payload:
// admission, pooled decode, coalesced prediction and response encoding
// appended to dst. It exists apart from the HTTP handler so the
// zero-alloc guard and the throughput benchmark can drive the exact
// serving path without a net/http connection in front. binary selects
// the ContentF64 codec; otherwise the payload is JSON.
func (s *Server) ServeBytes(body []byte, binary bool, dst []byte) ([]byte, error) {
	start := time.Now()
	j := getJob()
	sh := s.admit(j)
	if sh == nil {
		s.shards[int(uint32(j.shard))%len(s.shards)].met.shed.Inc()
		putJob(j)
		return dst, ErrShed
	}
	sh.met.requests.Inc()
	sh.met.inflight.Set(float64(len(sh.sem)))
	dst, err := s.serveJob(sh, j, body, binary, dst)
	if err != nil {
		sh.met.errs.Inc()
	}
	putJob(j)
	<-sh.sem
	sh.met.latency.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	return dst, err
}

// serveJob decodes into the pooled job, routes it through the shard's
// coalescer and encodes the response. Split from ServeBytes so the
// semaphore slot and job are released on every path.
func (s *Server) serveJob(sh *shard, j *job, body []byte, binary bool, dst []byte) ([]byte, error) {
	var err error
	if binary {
		err = decodeF64(body, &j.m)
	} else {
		err = decodeJSONRows(body, &j.m)
	}
	if err != nil {
		return dst, err
	}
	if j.m.Rows > 0 {
		mdl := s.models.Load()
		switch {
		case mdl == nil:
			return dst, ErrNoModel
		case j.m.Cols != mdl.Pred.NumFeatures():
			return dst, &core.BatchShapeError{Row: 0, Got: j.m.Cols, Want: mdl.Pred.NumFeatures()}
		case s.draining.Load():
			return dst, ErrDraining
		}
		j.rows = j.m.RowViews(j.rows)
		j.sizeOutputs()
		sh.submit <- j
		<-j.done
		if j.err != nil {
			return dst, j.err
		}
	} else {
		j.sizeOutputs()
	}
	if binary {
		return appendF64Response(dst, j.vert, j.horiz, j.avg), nil
	}
	return appendJSONResponse(dst, j.vert, j.horiz, j.avg), nil
}

// Stop drains the server: new requests shed immediately, every admitted
// request completes (each batcher flushes its final window), and the
// coalescing goroutines exit. Shards drain in fixed index order — the one
// lock-ordering rule of the package, shared with any future multi-shard
// acquirer — by taking every admission slot of a shard before closing its
// submit queue: once Stop owns all slots, no request on that shard is
// between admission and submit, so closing the channel is safe. Stop is
// idempotent; ctx bounds the wait.
func (s *Server) Stop(ctx contextLike) error {
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		for _, sh := range s.shards {
			for i := 0; i < cap(sh.sem); i++ {
				select {
				case sh.sem <- struct{}{}:
				case <-ctx.Done():
					s.stopErr = fmt.Errorf("serve: stop: %w", ctx.Err())
					return
				}
			}
			close(sh.submit)
			select {
			case <-sh.done:
			case <-ctx.Done():
				s.stopErr = fmt.Errorf("serve: stop: %w", ctx.Err())
				return
			}
		}
	})
	return s.stopErr
}

// contextLike is the subset of context.Context Stop needs; it avoids
// importing context just for Done/Err and keeps Stop testable with
// never-expiring stubs.
type contextLike interface {
	Done() <-chan struct{}
	Err() error
}

// connBuf is the per-request byte working set: the body read buffer and
// the response build buffer, pooled together.
type connBuf struct {
	in, out []byte
}

var connBufPool = sync.Pool{New: func() any { return &connBuf{} }}

// Handler returns the service mux:
//
//	POST /predict  — score a batch of feature rows (JSON or ContentF64)
//	GET  /healthz  — model generation, kind, feature count, drain state
//	POST /reload   — hot-swap the model artifact from disk
//	GET  /debug/*  — the obs debug endpoints (metrics, trace, vars)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/reload", s.handleReload)
	if s.obs != nil {
		mux.Handle("/debug/", s.obs.Handler())
	}
	return mux
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if r.ContentLength > s.opts.MaxBodyBytes {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	binary := r.Header.Get("Content-Type") == ContentF64
	buf := connBufPool.Get().(*connBuf)
	defer connBufPool.Put(buf)
	body, err := readBody(r, buf.in, s.opts.MaxBodyBytes)
	buf.in = body[:0]
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errBodyTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	out, err := s.ServeBytes(body, binary, buf.out[:0])
	buf.out = out[:0]
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	if binary {
		w.Header().Set("Content-Type", ContentF64)
	} else {
		w.Header().Set("Content-Type", ContentJSON)
	}
	w.Write(out)
}

// statusFor maps serving errors to HTTP statuses: client data errors are
// 400s, load shedding is 429, lifecycle states are 503.
func statusFor(err error) int {
	var shape *core.BatchShapeError
	switch {
	case errors.Is(err, ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNoModel), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBadPayload), errors.As(err, &shape):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

var errBodyTooLarge = errors.New("serve: request body too large")

// readBody reads the whole request body into buf (grown as needed,
// returned for reuse), honoring the byte cap without trusting
// Content-Length.
func readBody(r *http.Request, buf []byte, max int64) ([]byte, error) {
	if n := r.ContentLength; n > 0 && int64(cap(buf)) < n {
		buf = make([]byte, 0, n)
	}
	buf = buf[:0]
	for {
		if int64(len(buf)) > max {
			return buf, errBodyTooLarge
		}
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, fmt.Errorf("serve: reading request body: %w", err)
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", ContentJSON)
	m := s.models.Load()
	if m == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\n  \"status\": \"no model\",\n  \"generation\": 0\n}\n")
		return
	}
	fmt.Fprintf(w, "{\n  \"status\": %q,\n  \"generation\": %d,\n  \"model\": %q,\n  \"kind\": %q,\n  \"features\": %d,\n  \"loaded_at\": %q,\n  \"window_us\": %d,\n  \"max_batch\": %d,\n  \"shards\": %d,\n  \"max_inflight\": %d\n}\n",
		map[bool]string{false: "ok", true: "draining"}[s.draining.Load()],
		m.Generation, m.Path, m.Pred.Kind.String(), m.Pred.NumFeatures(),
		m.LoadedAt.UTC().Format(time.RFC3339Nano),
		s.opts.Window.Microseconds(), s.opts.MaxBatch, s.opts.Shards, s.opts.MaxInflight)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	m, err := s.Reload()
	if err != nil {
		if l := s.obs.Logger(); l != nil {
			l.Warn("model reload rejected", "error", err)
		}
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", ContentJSON)
	fmt.Fprintf(w, "{\n  \"status\": \"reloaded\",\n  \"generation\": %d,\n  \"model\": %q\n}\n", m.Generation, m.Path)
}
