// Package serve is the congestion predictor's serving layer: a long-lived
// HTTP service that loads SavePredictor artifacts and answers per-op V/H
// congestion predictions to many concurrent clients as fast as the
// hardware allows.
//
// The performance machinery, bottom to top:
//
//   - Request payloads decode into pooled ml.Matrix / slice buffers
//     (sync.Pool); a warmed server handles the whole /predict path —
//     admit, decode, coalesce, predict, encode — without allocating.
//   - Cross-request micro-batch coalescing: pending predictions are
//     collected for a bounded window (Options.Window, a few hundred µs)
//     or until a row cap (Options.MaxBatch), then scored with ONE
//     zero-alloc core.Predictor.PredictBatchInto call. Batch-of-batches
//     beats per-request predict because the scaler and the flattened
//     GBRT forest amortize their setup and stay hot in cache across the
//     whole batch. The batcher also flushes early the moment every
//     admitted request is already in the batch (the admission semaphore
//     proves no companion can arrive), so closed-loop clients never pay
//     the window — only genuinely concurrent traffic does.
//   - Admission control: a max-inflight semaphore sheds excess load with
//     a fast 429 instead of queueing without bound.
//   - Hot reload: models live behind an atomic pointer; SIGHUP or POST
//     /reload loads and fully validates the artifact, then swaps. The old
//     model serves every batch formed before the swap; an invalid
//     artifact is rejected with zero downtime.
//   - Graceful drain: Stop admits no new work, waits for every in-flight
//     request to complete (the batcher flushes its last window), then
//     retires the coalescing goroutine.
//
// Every stage reports into the internal/obs registry (latency and
// batch-size histograms, shed/reload counters, inflight/occupancy
// gauges), visible on the same /debug endpoints the rest of the repo
// uses.
package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Serving errors. The HTTP layer maps them to statuses; embedded callers
// match with errors.Is.
var (
	// ErrShed marks a request rejected by admission control (HTTP 429).
	ErrShed = errors.New("serve: shed: too many requests in flight")
	// ErrNoModel marks a request arriving before any model was loaded
	// (HTTP 503).
	ErrNoModel = errors.New("serve: no model loaded")
	// ErrDraining marks a request arriving during shutdown (HTTP 503).
	ErrDraining = errors.New("serve: draining")
)

// Options tunes the server. The zero value of each field selects the
// default noted on it.
type Options struct {
	// MaxBatch caps the rows of one coalesced batch (default 256).
	MaxBatch int
	// Window is how long the batcher holds an open batch waiting for
	// companions. The zero value selects the default 200µs; a negative
	// value means "never wait" — a batch still coalesces whatever is
	// already queued, but closes immediately.
	Window time.Duration
	// MaxInflight is the admission cap: requests beyond it are shed with
	// 429 (default 4×GOMAXPROCS, min 16).
	MaxInflight int
	// MaxBodyBytes bounds one request body (default 16 MiB).
	MaxBodyBytes int64
	// Obs receives request metrics; nil disables observation.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.Window == 0 {
		o.Window = 200 * time.Microsecond
	}
	if o.Window < 0 {
		o.Window = 0
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4 * runtime.GOMAXPROCS(0)
		if o.MaxInflight < 16 {
			o.MaxInflight = 16
		}
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 16 << 20
	}
	return o
}

// metricSet holds the resolved metric handles. Handles are looked up once
// at construction — the registry's name map takes a lock, the handles are
// lock-free atomics — and every field no-ops when observation is off.
type metricSet struct {
	requests, shed, errs *obs.Counter
	predictions, batches *obs.Counter
	reloads, reloadErrs  *obs.Counter
	batchRows, latency   *obs.Histogram
	occupancy, inflight  *obs.Gauge
}

func newMetricSet(o *obs.Observer) metricSet {
	r := o.Metrics()
	return metricSet{
		requests:    r.Counter(obs.MetricServeRequests),
		shed:        r.Counter(obs.MetricServeShed),
		errs:        r.Counter(obs.MetricServeErrors),
		predictions: r.Counter(obs.MetricServePredictions),
		batches:     r.Counter(obs.MetricServeBatches),
		reloads:     r.Counter(obs.MetricServeReloads),
		reloadErrs:  r.Counter(obs.MetricServeReloadErrors),
		batchRows:   r.Histogram(obs.MetricServeBatchRows, obs.BatchRowsBuckets),
		latency:     r.Histogram(obs.MetricServeLatencyUs, obs.LatencyMicrosBuckets),
		occupancy:   r.Gauge(obs.MetricServeBatchOccupancy),
		inflight:    r.Gauge(obs.MetricServeInflight),
	}
}

// Server is the prediction service core. Construct with New, publish a
// model with LoadModel (or Reload), mount Handler on an http.Server, and
// retire with Stop.
type Server struct {
	opts      Options
	obs       *obs.Observer
	met       metricSet
	models    modelSlot
	modelPath atomic.Pointer[string]

	// sem is the admission semaphore: one slot per in-flight request.
	// Stop acquires every slot to prove no request is between admission
	// and release, which is what makes closing submit safe.
	sem         chan struct{}
	submit      chan *job
	batcherDone chan struct{}
	draining    atomic.Bool
	stopOnce    sync.Once
	stopErr     error
}

// New starts the coalescing loop and returns a server with no model
// loaded (requests answer 503 until LoadModel succeeds).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:        opts,
		obs:         opts.Obs,
		met:         newMetricSet(opts.Obs),
		sem:         make(chan struct{}, opts.MaxInflight),
		submit:      make(chan *job, opts.MaxInflight),
		batcherDone: make(chan struct{}),
	}
	go s.batchLoop()
	return s
}

// Options returns the resolved (defaulted) options the server runs with.
func (s *Server) Options() Options { return s.opts }

// Model returns the currently serving model (nil before the first load).
func (s *Server) Model() *Model { return s.models.Load() }

// LoadModel loads, validates and publishes the artifact at path, which
// also becomes the path Reload re-reads.
func (s *Server) LoadModel(path string) (*Model, error) {
	m, err := s.models.Reload(path)
	if err != nil {
		s.met.reloadErrs.Inc()
		return nil, err
	}
	s.modelPath.Store(&path)
	s.met.reloads.Inc()
	if l := s.obs.Logger(); l != nil {
		l.Info("model loaded", "path", path, "generation", m.Generation, "kind", m.Pred.Kind.String())
	}
	return m, nil
}

// Reload re-reads the artifact last given to LoadModel and swaps it in
// atomically. On error the previous model keeps serving untouched.
func (s *Server) Reload() (*Model, error) {
	p := s.modelPath.Load()
	if p == nil {
		return nil, fmt.Errorf("serve: reload: no model path configured")
	}
	return s.LoadModel(*p)
}

// ServeBytes runs the whole /predict hot path on one raw payload:
// admission, pooled decode, coalesced prediction and response encoding
// appended to dst. It exists apart from the HTTP handler so the
// zero-alloc guard and the throughput benchmark can drive the exact
// serving path without a net/http connection in front. binary selects
// the ContentF64 codec; otherwise the payload is JSON.
func (s *Server) ServeBytes(body []byte, binary bool, dst []byte) ([]byte, error) {
	start := time.Now()
	select {
	case s.sem <- struct{}{}:
	default:
		s.met.shed.Inc()
		return dst, ErrShed
	}
	s.met.requests.Inc()
	s.met.inflight.Set(float64(len(s.sem)))
	j := getJob()
	dst, err := s.serveJob(j, body, binary, dst)
	if err != nil {
		s.met.errs.Inc()
	}
	putJob(j)
	<-s.sem
	s.met.latency.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	return dst, err
}

// serveJob decodes into the pooled job, routes it through the coalescer
// and encodes the response. Split from ServeBytes so the semaphore slot
// and job are released on every path.
func (s *Server) serveJob(j *job, body []byte, binary bool, dst []byte) ([]byte, error) {
	var err error
	if binary {
		err = decodeF64(body, &j.m)
	} else {
		err = decodeJSONRows(body, &j.m)
	}
	if err != nil {
		return dst, err
	}
	if j.m.Rows > 0 {
		mdl := s.models.Load()
		switch {
		case mdl == nil:
			return dst, ErrNoModel
		case j.m.Cols != mdl.Pred.NumFeatures():
			return dst, &core.BatchShapeError{Row: 0, Got: j.m.Cols, Want: mdl.Pred.NumFeatures()}
		case s.draining.Load():
			return dst, ErrDraining
		}
		j.rows = j.m.RowViews(j.rows)
		j.sizeOutputs()
		s.submit <- j
		<-j.done
		if j.err != nil {
			return dst, j.err
		}
	} else {
		j.sizeOutputs()
	}
	if binary {
		return appendF64Response(dst, j.vert, j.horiz, j.avg), nil
	}
	return appendJSONResponse(dst, j.vert, j.horiz, j.avg), nil
}

// Stop drains the server: new requests shed immediately, every admitted
// request completes (the batcher flushes its final window), and the
// coalescing goroutine exits. Stop is idempotent; ctx bounds the wait.
func (s *Server) Stop(ctx contextLike) error {
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		// Hold every admission slot: once all are ours, no request is
		// between admission and release, so nothing can send on submit.
		for i := 0; i < cap(s.sem); i++ {
			select {
			case s.sem <- struct{}{}:
			case <-ctx.Done():
				s.stopErr = fmt.Errorf("serve: stop: %w", ctx.Err())
				return
			}
		}
		close(s.submit)
		select {
		case <-s.batcherDone:
		case <-ctx.Done():
			s.stopErr = fmt.Errorf("serve: stop: %w", ctx.Err())
		}
	})
	return s.stopErr
}

// contextLike is the subset of context.Context Stop needs; it avoids
// importing context just for Done/Err and keeps Stop testable with
// never-expiring stubs.
type contextLike interface {
	Done() <-chan struct{}
	Err() error
}

// connBuf is the per-request byte working set: the body read buffer and
// the response build buffer, pooled together.
type connBuf struct {
	in, out []byte
}

var connBufPool = sync.Pool{New: func() any { return &connBuf{} }}

// Handler returns the service mux:
//
//	POST /predict  — score a batch of feature rows (JSON or ContentF64)
//	GET  /healthz  — model generation, kind, feature count, drain state
//	POST /reload   — hot-swap the model artifact from disk
//	GET  /debug/*  — the obs debug endpoints (metrics, trace, vars)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/reload", s.handleReload)
	if s.obs != nil {
		mux.Handle("/debug/", s.obs.Handler())
	}
	return mux
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if r.ContentLength > s.opts.MaxBodyBytes {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	binary := r.Header.Get("Content-Type") == ContentF64
	buf := connBufPool.Get().(*connBuf)
	defer connBufPool.Put(buf)
	body, err := readBody(r, buf.in, s.opts.MaxBodyBytes)
	buf.in = body[:0]
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errBodyTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	out, err := s.ServeBytes(body, binary, buf.out[:0])
	buf.out = out[:0]
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	if binary {
		w.Header().Set("Content-Type", ContentF64)
	} else {
		w.Header().Set("Content-Type", ContentJSON)
	}
	w.Write(out)
}

// statusFor maps serving errors to HTTP statuses: client data errors are
// 400s, load shedding is 429, lifecycle states are 503.
func statusFor(err error) int {
	var shape *core.BatchShapeError
	switch {
	case errors.Is(err, ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNoModel), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrBadPayload), errors.As(err, &shape):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

var errBodyTooLarge = errors.New("serve: request body too large")

// readBody reads the whole request body into buf (grown as needed,
// returned for reuse), honoring the byte cap without trusting
// Content-Length.
func readBody(r *http.Request, buf []byte, max int64) ([]byte, error) {
	if n := r.ContentLength; n > 0 && int64(cap(buf)) < n {
		buf = make([]byte, 0, n)
	}
	buf = buf[:0]
	for {
		if int64(len(buf)) > max {
			return buf, errBodyTooLarge
		}
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, fmt.Errorf("serve: reading request body: %w", err)
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", ContentJSON)
	m := s.models.Load()
	if m == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\n  \"status\": \"no model\",\n  \"generation\": 0\n}\n")
		return
	}
	fmt.Fprintf(w, "{\n  \"status\": %q,\n  \"generation\": %d,\n  \"model\": %q,\n  \"kind\": %q,\n  \"features\": %d,\n  \"loaded_at\": %q,\n  \"window_us\": %d,\n  \"max_batch\": %d\n}\n",
		map[bool]string{false: "ok", true: "draining"}[s.draining.Load()],
		m.Generation, m.Path, m.Pred.Kind.String(), m.Pred.NumFeatures(),
		m.LoadedAt.UTC().Format(time.RFC3339Nano),
		s.opts.Window.Microseconds(), s.opts.MaxBatch)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	m, err := s.Reload()
	if err != nil {
		if l := s.obs.Logger(); l != nil {
			l.Warn("model reload rejected", "error", err)
		}
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.Header().Set("Content-Type", ContentJSON)
	fmt.Fprintf(w, "{\n  \"status\": \"reloaded\",\n  \"generation\": %d,\n  \"model\": %q\n}\n", m.Generation, m.Path)
}
