package serve

// Serving-path benchmarks. BenchmarkServePredict* drive ServeBytes — the
// exact hot path behind POST /predict, minus net/http — and report
// preds/sec so scripts/bench.sh can derive the throughput figure for
// BENCH_PR7.json. Run with GOMAXPROCS=1 to measure the single-core claim.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ml"
)

var (
	benchPredOnce sync.Once
	benchPred     *core.Predictor
	benchPredErr  error
)

// benchPredictor trains the quick GBRT once per process: GBRT is the
// paper's headline model and the heaviest serving path, so throughput
// numbers against it are the honest ones.
func benchPredictor(b *testing.B) *core.Predictor {
	b.Helper()
	benchPredOnce.Do(func() {
		benchPred, benchPredErr = core.Train(synthDataset(160, 7),
			core.TrainOptions{Kind: core.GBRT, Seed: 1, Size: core.SizeQuick})
	})
	if benchPredErr != nil {
		b.Fatalf("training bench predictor: %v", benchPredErr)
	}
	return benchPred
}

func benchServer(b *testing.B, opts Options) *Server {
	b.Helper()
	s := New(opts)
	s.models.Publish(benchPredictor(b), "bench")
	b.Cleanup(func() { s.Stop(context.Background()) })
	return s
}

func benchServeBytes(b *testing.B, rows int, binary bool) {
	s := benchServer(b, Options{Window: -1})
	var req []byte
	if binary {
		req = binaryRequest(randRows(rows, int64(rows)))
	} else {
		req = jsonRequest(b, randRows(rows, int64(rows)))
	}
	var dst []byte
	b.ReportAllocs()
	b.SetBytes(int64(len(req)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.ServeBytes(req, binary, dst[:0])
		if err != nil {
			b.Fatalf("ServeBytes: %v", err)
		}
		dst = out
	}
	b.StopTimer()
	preds := float64(rows) * float64(b.N)
	b.ReportMetric(preds/b.Elapsed().Seconds(), "preds/s")
}

func BenchmarkServePredictBinary1(b *testing.B)   { benchServeBytes(b, 1, true) }
func BenchmarkServePredictBinary64(b *testing.B)  { benchServeBytes(b, 64, true) }
func BenchmarkServePredictBinary256(b *testing.B) { benchServeBytes(b, 256, true) }
func BenchmarkServePredictJSON64(b *testing.B)    { benchServeBytes(b, 64, false) }

// BenchmarkServeCoalesced measures the full concurrent pipeline: many
// closed-loop clients, a real coalescing window, batches formed across
// requests. RunParallel spreads clients over GOMAXPROCS; with
// GOMAXPROCS=1 this is the single-core serving figure.
func BenchmarkServeCoalesced(b *testing.B) {
	s := benchServer(b, Options{Window: 50 * time.Microsecond, Shards: 1})
	const rows = 32
	req := binaryRequest(randRows(rows, 3))
	b.ReportAllocs()
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var dst []byte
		for pb.Next() {
			out, err := s.ServeBytes(req, true, dst[:0])
			if err != nil {
				b.Fatalf("ServeBytes: %v", err)
			}
			dst = out
		}
	})
	b.StopTimer()
	preds := float64(rows) * float64(b.N)
	b.ReportMetric(preds/b.Elapsed().Seconds(), "preds/s")
}

// BenchmarkServeCoalescedSharded is the multi-core pipeline: one batcher
// lane per GOMAXPROCS, requests routed by affinity hint, striped metrics.
// Compare with BenchmarkServeCoalesced at the same GOMAXPROCS for the
// scale-out gain; scripts/bench.sh sweeps GOMAXPROCS over both to record
// the throughput-vs-cores curve in BENCH_PR9.json.
func BenchmarkServeCoalescedSharded(b *testing.B) {
	s := benchServer(b, Options{Window: 50 * time.Microsecond, Shards: 0}) // 0 → GOMAXPROCS lanes
	const rows = 32
	req := binaryRequest(randRows(rows, 3))
	b.ReportAllocs()
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var dst []byte
		for pb.Next() {
			out, err := s.ServeBytes(req, true, dst[:0])
			if err != nil {
				b.Fatalf("ServeBytes: %v", err)
			}
			dst = out
		}
	})
	b.StopTimer()
	preds := float64(rows) * float64(b.N)
	b.ReportMetric(preds/b.Elapsed().Seconds(), "preds/s")
}

// BenchmarkDecodeF64 isolates the binary codec.
func BenchmarkDecodeF64(b *testing.B) {
	req := binaryRequest(randRows(64, 5))
	var m ml.Matrix
	b.ReportAllocs()
	b.SetBytes(int64(len(req)))
	for i := 0; i < b.N; i++ {
		if err := decodeF64(req, &m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeJSONRows isolates the hand-rolled JSON parser; compare
// with BenchmarkDecodeF64 for the float-parsing cost the binary format
// exists to avoid.
func BenchmarkDecodeJSONRows(b *testing.B) {
	req := jsonRequest(b, randRows(64, 5))
	var m ml.Matrix
	b.ReportAllocs()
	b.SetBytes(int64(len(req)))
	for i := 0; i < b.N; i++ {
		if err := decodeJSONRows(req, &m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictBatchDirect is the floor: PredictBatchInto with no
// serving layer at all. The gap between this and ServeBytes is the total
// overhead of admission + decode + coalesce + encode.
func BenchmarkPredictBatchDirect(b *testing.B) {
	p := benchPredictor(b)
	rows := randRows(64, 9)
	vert := make([]float64, len(rows))
	horiz := make([]float64, len(rows))
	avg := make([]float64, len(rows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.PredictBatchInto(vert, horiz, avg, rows); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	preds := float64(len(rows)) * float64(b.N)
	b.ReportMetric(preds/b.Elapsed().Seconds(), "preds/s")
}
