package serve

import (
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/ml"
)

func TestDecodeJSONRows(t *testing.T) {
	cases := []struct {
		name string
		in   string
		rows int
		cols int
		flat []float64
	}{
		{"bare", `[[1,2],[3,4]]`, 2, 2, []float64{1, 2, 3, 4}},
		{"wrapped", `{"rows": [[1.5, -2e3]]}`, 1, 2, []float64{1.5, -2000}},
		{"whitespace", " [ [ 1 , 2 ] , [ 3 , 4 ] ] ", 2, 2, []float64{1, 2, 3, 4}},
		{"empty", `[]`, 0, 0, nil},
		{"wrapped empty", `{"rows":[]}`, 0, 0, nil},
		{"empty rows", `[[],[]]`, 2, 0, nil},
		{"exponent", `[[1e-3, 2.5E+2]]`, 1, 2, []float64{0.001, 250}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var m ml.Matrix
			if err := decodeJSONRows([]byte(c.in), &m); err != nil {
				t.Fatalf("decode %q: %v", c.in, err)
			}
			if m.Rows != c.rows || m.Cols != c.cols {
				t.Fatalf("shape %dx%d, want %dx%d", m.Rows, m.Cols, c.rows, c.cols)
			}
			for i, v := range c.flat {
				if m.Data[i] != v {
					t.Fatalf("data[%d] = %v, want %v", i, m.Data[i], v)
				}
			}
		})
	}
}

func TestDecodeJSONRowsRejects(t *testing.T) {
	bad := []struct {
		name string
		in   string
	}{
		{"ragged", `[[1,2],[1,2,3]]`},
		{"ragged short", `[[1,2],[1]]`},
		{"not json", `hello`},
		{"bare number", `42`},
		{"object rows", `{"rows": 3}`},
		{"wrong key", `{"data": [[1]]}`},
		{"trailing", `[[1]] extra`},
		{"trailing comma", `[[1,]]`},
		{"unclosed row", `[[1,2`},
		{"unclosed outer", `[[1,2]`},
		{"unclosed wrapper", `{"rows": [[1]]`},
		{"nan", `[[NaN]]`},
		{"infinity", `[[1e999]]`},
		{"string value", `[["a"]]`},
		{"nested deeper", `[[[1]]]`},
		{"empty input", ``},
		{"double number", `[[1 2]]`},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			var m ml.Matrix
			if err := decodeJSONRows([]byte(c.in), &m); !errors.Is(err, ErrBadPayload) {
				t.Fatalf("decode %q: err=%v, want ErrBadPayload", c.in, err)
			}
		})
	}
}

func TestDecodeF64RoundTrip(t *testing.T) {
	rows := [][]float64{{1, -2.5, 3e10}, {0, 42, -1e-300}}
	var m ml.Matrix
	if err := decodeF64(binaryRequest(rows), &m); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape %dx%d, want 2x3", m.Rows, m.Cols)
	}
	for i, row := range rows {
		for j, v := range row {
			if got := m.Data[i*3+j]; got != v {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, got, v)
			}
		}
	}
}

func TestDecodeF64Rejects(t *testing.T) {
	ok := binaryRequest([][]float64{{1, 2}})
	nan := binaryRequest([][]float64{{1, 2}})
	binary.LittleEndian.PutUint64(nan[8:], math.Float64bits(math.NaN()))

	hdr := func(rows, cols uint32, body int) []byte {
		b := binary.LittleEndian.AppendUint32(nil, rows)
		b = binary.LittleEndian.AppendUint32(b, cols)
		return append(b, make([]byte, body)...)
	}
	bad := [][]byte{
		nil,                 // empty
		ok[:7],              // truncated header
		ok[:len(ok)-1],      // truncated body
		append(ok, 0),       // trailing byte
		nan,                 // non-finite value
		hdr(1, 1<<31-1, 16), // cols overflows the body
		hdr(1<<31-1, 1, 16), // rows overflows the body
		hdr(2, 2, 16),       // body shorter than the shape
	}
	for i, b := range bad {
		var m ml.Matrix
		if err := decodeF64(b, &m); !errors.Is(err, ErrBadPayload) {
			t.Fatalf("case %d (%d bytes): err=%v, want ErrBadPayload", i, len(b), err)
		}
	}

	// Zero rows with a column hint is a valid empty batch.
	var m ml.Matrix
	if err := decodeF64(hdr(0, 7, 0), &m); err != nil || m.Rows != 0 {
		t.Fatalf("empty batch: rows=%d err=%v", m.Rows, err)
	}
}

func TestAppendJSONResponseRoundTrips(t *testing.T) {
	vert := []float64{1.5, -2.25}
	horiz := []float64{0.1, 3}
	avg := []float64{0.8, 0.375}
	got := string(appendJSONResponse(nil, vert, horiz, avg))
	want := `{"rows":2,"vert":[1.5,-2.25],"horiz":[0.1,3],"avg":[0.8,0.375]}` + "\n"
	if got != want {
		t.Fatalf("response %q, want %q", got, want)
	}
	// The encoder must emit strict JSON the stdlib can read back (the
	// custom parser only handles requests).
	if strings.Count(got, "[") != 3 {
		t.Fatalf("response %q lost a section", got)
	}
}

func TestAppendF64ResponseLayout(t *testing.T) {
	out := appendF64Response(nil, []float64{1, 2}, []float64{3, 4}, []float64{5, 6})
	v, h, a := decodeF64Response(t, out)
	for i, want := range []float64{1, 2} {
		if v[i] != want {
			t.Fatalf("vert[%d] = %v", i, v[i])
		}
	}
	if h[0] != 3 || h[1] != 4 || a[0] != 5 || a[1] != 6 {
		t.Fatalf("sections scrambled: %v %v", h, a)
	}
}

// FuzzDecodeJSONRows asserts the hand-rolled parser never panics and only
// fails with ErrBadPayload, whatever bytes arrive off the wire.
func FuzzDecodeJSONRows(f *testing.F) {
	f.Add([]byte(`[[1,2],[3,4]]`))
	f.Add([]byte(`{"rows": [[1.5e-3]]}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`[[1,2],[3]]`))
	f.Add([]byte(`{"rows":`))
	f.Add([]byte(` [ [ -0.5 ] ] `))
	var m ml.Matrix
	f.Fuzz(func(t *testing.T, b []byte) {
		if err := decodeJSONRows(b, &m); err != nil && !errors.Is(err, ErrBadPayload) {
			t.Fatalf("non-payload error: %v", err)
		}
	})
}

// FuzzDecodeF64 does the same for the binary codec, which faces raw
// network bytes with attacker-controlled shape headers.
func FuzzDecodeF64(f *testing.F) {
	f.Add(binaryRequest([][]float64{{1, 2}}))
	f.Add([]byte{1, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte{})
	var m ml.Matrix
	f.Fuzz(func(t *testing.T, b []byte) {
		if err := decodeF64(b, &m); err != nil && !errors.Is(err, ErrBadPayload) {
			t.Fatalf("non-payload error: %v", err)
		}
	})
}
