package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ml"
)

// job carries one decoded /predict request through the coalescer: the
// pooled feature matrix going in, the pooled result slices coming back,
// and a one-slot completion channel. Jobs live in a sync.Pool with all
// their buffers, so a warmed server admits, scores and answers requests
// without allocating.
type job struct {
	// m holds the decoded feature rows; rows are views into m's flat
	// backing array, regenerated after each decode.
	m    ml.Matrix
	rows [][]float64
	// vert, horiz and avg are the per-row results, each m.Rows long. The
	// batcher scatters the coalesced outputs into them so the handler can
	// encode its response after the batch buffers have moved on.
	vert, horiz, avg []float64
	// err is the batch outcome for this job (nil on success).
	err error
	// done receives exactly one value when the batcher has filled the
	// outputs (or err). Buffered so the batcher never blocks on a slow
	// handler.
	done chan struct{}
}

var jobPool = sync.Pool{New: func() any { return &job{done: make(chan struct{}, 1)} }}

func getJob() *job { return jobPool.Get().(*job) }

func putJob(j *job) {
	j.err = nil
	jobPool.Put(j)
}

// sizeOutputs resizes the result slices to the decoded row count, growing
// only when a previous use was smaller.
func (j *job) sizeOutputs() {
	n := j.m.Rows
	j.vert = growFloats(j.vert, n)
	j.horiz = growFloats(j.horiz, n)
	j.avg = growFloats(j.avg, n)
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// batchLoop is the coalescing heart of the server: it drains the submit
// channel, groups pending jobs into micro-batches and scores each batch
// with one PredictBatchInto call. A batch closes when its row count
// reaches Options.MaxBatch, when every admitted request is already in it
// (see allQueued), or when Options.Window has elapsed since its first job
// — the window bounds the latency a lone request pays for the chance to
// share a batch, the cap bounds how much work one call hoards. All
// scratch (pending slice, gathered row views, batch outputs, the window
// timer) is reused across batches, so the loop itself never allocates in
// steady state.
func (s *Server) batchLoop() {
	defer close(s.batcherDone)
	var (
		pending          = make([]*job, 0, 64)
		rows             [][]float64
		vert, horiz, avg []float64
	)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	open := true
	for open {
		j, ok := <-s.submit
		if !ok {
			return
		}
		pending = append(pending[:0], j)
		n := j.m.Rows
		if n < s.opts.MaxBatch && !s.allQueued(len(pending)) {
			if s.opts.Window > 0 {
				// Windowed collection: wait up to Window for companions.
				timer.Reset(s.opts.Window)
				fired := false
			collect:
				for n < s.opts.MaxBatch {
					select {
					case j2, ok2 := <-s.submit:
						if !ok2 {
							open = false
							break collect
						}
						pending = append(pending, j2)
						n += j2.m.Rows
						if s.allQueued(len(pending)) {
							break collect
						}
					case <-timer.C:
						fired = true
						break collect
					}
				}
				if !fired && !timer.Stop() {
					<-timer.C
				}
			} else {
				// No window: greedily take whatever is already queued.
			greedy:
				for n < s.opts.MaxBatch {
					select {
					case j2, ok2 := <-s.submit:
						if !ok2 {
							open = false
							break greedy
						}
						pending = append(pending, j2)
						n += j2.m.Rows
					default:
						break greedy
					}
				}
			}
		}
		rows, vert, horiz, avg = s.flush(pending, rows, vert, horiz, avg)
	}
}

// allQueued reports whether every admitted request is already in the
// batch. Each in-flight request holds exactly one admission slot from
// before it submits until after its response is encoded, so len(s.sem)
// bounds the jobs that could still join; once pending matches it the
// submit queue is provably dry and waiting out the window is pure added
// latency. The read races with new admissions, but only conservatively —
// an overcount just means the batcher keeps waiting and the window still
// bounds the wait. This is what keeps closed-loop p99 near the predict
// time instead of near the timer's firing slop.
func (s *Server) allQueued(pending int) bool { return pending >= len(s.sem) }

// flush scores one coalesced batch and wakes every waiting job. The
// single-job case predicts straight into the job's own output slices; a
// multi-job batch gathers the row views, predicts once into the shared
// batch outputs, and scatters each job's segment back. The scratch slices
// are threaded through and returned so the loop reuses their capacity.
func (s *Server) flush(pending []*job, rows [][]float64, vert, horiz, avg []float64) ([][]float64, []float64, []float64, []float64) {
	total := 0
	for _, j := range pending {
		total += j.m.Rows
	}
	s.met.batches.Inc()
	s.met.batchRows.Observe(float64(total))
	s.met.occupancy.Set(float64(total) / float64(s.opts.MaxBatch))
	mdl := s.models.Load()
	if mdl == nil {
		for _, j := range pending {
			j.err = ErrNoModel
			j.done <- struct{}{}
		}
		return rows, vert, horiz, avg
	}
	if len(pending) == 1 {
		j := pending[0]
		j.err = predictGuarded(mdl.Pred, j.vert, j.horiz, j.avg, j.rows)
		if j.err == nil {
			s.met.predictions.Add(int64(total))
		}
		j.done <- struct{}{}
		return rows, vert, horiz, avg
	}
	rows = rows[:0]
	for _, j := range pending {
		rows = append(rows, j.rows...)
	}
	vert = growFloats(vert, total)
	horiz = growFloats(horiz, total)
	avg = growFloats(avg, total)
	// Admission already checked each job's width against the model, so a
	// shape error here means the model was swapped for one with a
	// different layout mid-flight; the whole batch reports it.
	err := predictGuarded(mdl.Pred, vert, horiz, avg, rows)
	off := 0
	for _, j := range pending {
		n := j.m.Rows
		if err != nil {
			j.err = err
		} else {
			copy(j.vert, vert[off:off+n])
			copy(j.horiz, horiz[off:off+n])
			copy(j.avg, avg[off:off+n])
		}
		off += n
		j.done <- struct{}{}
	}
	if err == nil {
		s.met.predictions.Add(int64(total))
	}
	return rows, vert, horiz, avg
}

// predictGuarded firewalls the batcher goroutine against model-internal
// panics: the server scores untrusted input around hot-swapped artifacts,
// and a panic escaping the loop would take the whole service down.
func predictGuarded(p *core.Predictor, vert, horiz, avg []float64, rows [][]float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: predict panicked: %v", r)
		}
	}()
	return p.PredictBatchInto(vert, horiz, avg, rows)
}
