package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ml"
)

// job carries one decoded /predict request through a shard's coalescer:
// the pooled feature matrix going in, the pooled result slices coming
// back, and a one-slot completion channel. Jobs live in a sync.Pool with
// all their buffers, so a warmed server admits, scores and answers
// requests without allocating.
type job struct {
	// m holds the decoded feature rows; rows are views into m's flat
	// backing array, regenerated after each decode.
	m    ml.Matrix
	rows [][]float64
	// vert, horiz and avg are the per-row results, each m.Rows long. The
	// batcher scatters the coalesced outputs into them so the handler can
	// encode its response after the batch buffers have moved on.
	vert, horiz, avg []float64
	// shard is the affinity hint: the shard index this job was last
	// admitted on (modulo the server's shard count — the pool is shared
	// across servers). sync.Pool is per-P, so a core keeps drawing the
	// same jobs and the hint routes its requests back to the same shard —
	// same batcher goroutine, same warm buffers — without any shared
	// routing state. New jobs start on round-robin shards so cold bursts
	// spread out.
	shard int32
	// err is the batch outcome for this job (nil on success).
	err error
	// done receives exactly one value when the batcher has filled the
	// outputs (or err). Buffered so the batcher never blocks on a slow
	// handler.
	done chan struct{}
}

var jobShardRR atomic.Uint32

var jobPool = sync.Pool{New: func() any {
	return &job{done: make(chan struct{}, 1), shard: int32(jobShardRR.Add(1))}
}}

func getJob() *job { return jobPool.Get().(*job) }

func putJob(j *job) {
	j.err = nil
	jobPool.Put(j)
}

// sizeOutputs resizes the result slices to the decoded row count, growing
// only when a previous use was smaller.
func (j *job) sizeOutputs() {
	n := j.m.Rows
	j.vert = growFloats(j.vert, n)
	j.horiz = growFloats(j.horiz, n)
	j.avg = growFloats(j.avg, n)
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// batchLoop is the coalescing heart of one shard: it drains the shard's
// submit channel, groups pending jobs into micro-batches and scores each
// batch with one PredictBatchInto call. A batch closes when its row count
// reaches Options.MaxBatch, when every request admitted on this shard is
// already in it (see allQueued), or when Options.Window has elapsed since
// its first job — the window bounds the latency a lone request pays for
// the chance to share a batch, the cap bounds how much work one call
// hoards. All scratch (pending slice, gathered row views, batch outputs,
// the window timer) is owned by this shard and reused across batches, so
// the loop itself never allocates in steady state and never touches
// another shard's memory.
func (sh *shard) batchLoop() {
	defer close(sh.done)
	var (
		pending          = make([]*job, 0, 64)
		rows             [][]float64
		vert, horiz, avg []float64
	)
	opts := sh.srv.opts
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	open := true
	for open {
		j, ok := <-sh.submit
		if !ok {
			return
		}
		pending = append(pending[:0], j)
		n := j.m.Rows
		if n < opts.MaxBatch && !sh.allQueued(len(pending)) {
			if opts.Window > 0 {
				// Windowed collection: wait up to Window for companions.
				timer.Reset(opts.Window)
				fired := false
			collect:
				for n < opts.MaxBatch {
					select {
					case j2, ok2 := <-sh.submit:
						if !ok2 {
							open = false
							break collect
						}
						pending = append(pending, j2)
						n += j2.m.Rows
						if sh.allQueued(len(pending)) {
							break collect
						}
					case <-timer.C:
						fired = true
						break collect
					}
				}
				if !fired && !timer.Stop() {
					<-timer.C
				}
			} else {
				// No window: greedily take whatever is already queued.
			greedy:
				for n < opts.MaxBatch {
					select {
					case j2, ok2 := <-sh.submit:
						if !ok2 {
							open = false
							break greedy
						}
						pending = append(pending, j2)
						n += j2.m.Rows
					default:
						break greedy
					}
				}
			}
		}
		rows, vert, horiz, avg = sh.flush(pending, rows, vert, horiz, avg)
	}
}

// allQueued reports whether every request admitted on this shard is
// already in the batch. Each in-flight request holds exactly one slot of
// the shard it submitted to, from before it submits until after its
// response is encoded, so len(sh.sem) bounds the jobs that could still
// join this shard's batch; once pending matches it the submit queue is
// provably dry and waiting out the window is pure added latency. Splitting
// MaxInflight into per-shard semaphores is what keeps this proof local:
// requests on other shards hold other semaphores and can never land here.
// The read races with new admissions, but only conservatively — an
// overcount just means the batcher keeps waiting and the window still
// bounds the wait. This is what keeps closed-loop p99 near the predict
// time instead of near the timer's firing slop.
func (sh *shard) allQueued(pending int) bool { return pending >= len(sh.sem) }

// flush scores one coalesced batch and wakes every waiting job. The
// single-job case predicts straight into the job's own output slices; a
// multi-job batch gathers the row views, predicts once into the shard's
// batch outputs, and scatters each job's segment back. The model pointer
// is loaded exactly once per flush, so every row of a batch — whatever
// requests it coalesced — is scored by one generation. The scratch slices
// are threaded through and returned so the loop reuses their capacity.
func (sh *shard) flush(pending []*job, rows [][]float64, vert, horiz, avg []float64) ([][]float64, []float64, []float64, []float64) {
	total := 0
	for _, j := range pending {
		total += j.m.Rows
	}
	sh.met.batches.Inc()
	sh.met.batchRows.Observe(float64(total))
	sh.srv.occupancy.Set(float64(total) / float64(sh.srv.opts.MaxBatch))
	mdl := sh.srv.models.Load()
	if mdl == nil {
		for _, j := range pending {
			j.err = ErrNoModel
			j.done <- struct{}{}
		}
		return rows, vert, horiz, avg
	}
	if len(pending) == 1 {
		j := pending[0]
		j.err = predictGuarded(mdl.Pred, j.vert, j.horiz, j.avg, j.rows)
		if j.err == nil {
			sh.met.predictions.Add(int64(total))
		}
		j.done <- struct{}{}
		return rows, vert, horiz, avg
	}
	rows = rows[:0]
	for _, j := range pending {
		rows = append(rows, j.rows...)
	}
	vert = growFloats(vert, total)
	horiz = growFloats(horiz, total)
	avg = growFloats(avg, total)
	// Admission already checked each job's width against the model, so a
	// shape error here means the model was swapped for one with a
	// different layout mid-flight; the whole batch reports it.
	err := predictGuarded(mdl.Pred, vert, horiz, avg, rows)
	off := 0
	for _, j := range pending {
		n := j.m.Rows
		if err != nil {
			j.err = err
		} else {
			copy(j.vert, vert[off:off+n])
			copy(j.horiz, horiz[off:off+n])
			copy(j.avg, avg[off:off+n])
		}
		off += n
		j.done <- struct{}{}
	}
	if err == nil {
		sh.met.predictions.Add(int64(total))
	}
	return rows, vert, horiz, avg
}

// predictGuarded firewalls the batcher goroutine against model-internal
// panics: the server scores untrusted input around hot-swapped artifacts,
// and a panic escaping the loop would take the whole service down.
func predictGuarded(p *core.Predictor, vert, horiz, avg []float64, rows [][]float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: predict panicked: %v", r)
		}
	}()
	return p.PredictBatchInto(vert, horiz, avg, rows)
}
