package serve

// Tests for the multi-core scale-out: shard routing, per-shard admission
// and shedding, prediction byte-identity across shard counts, and the
// one-generation-per-batch reload invariant.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestShardedPredictionsMatchSingleShard is the scale-out reproduction
// contract: the same payloads served through 1-shard and many-shard
// servers must produce byte-identical responses — sharding changes which
// rows share a batch, never what a row scores.
func TestShardedPredictionsMatchSingleShard(t *testing.T) {
	single := newTestServer(t, Options{Window: -1, Shards: 1})
	sharded := newTestServer(t, Options{Window: 100 * time.Microsecond, Shards: 4})
	for seed := int64(0); seed < 8; seed++ {
		for _, rows := range []int{1, 7, 64} {
			req := binaryRequest(randRows(rows, seed))
			want, err := single.ServeBytes(req, true, nil)
			if err != nil {
				t.Fatalf("single-shard serve (seed %d, %d rows): %v", seed, rows, err)
			}
			got, err := sharded.ServeBytes(req, true, nil)
			if err != nil {
				t.Fatalf("sharded serve (seed %d, %d rows): %v", seed, rows, err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("seed %d, %d rows: sharded response differs from single-shard", seed, rows)
			}
		}
	}
}

// TestShardRoutingSpreadsConcurrentLoad: with every shard's slot count at
// one, concurrent closed-loop clients must be admitted across shards (the
// affinity hint plus round-robin fallback), not funnel through one lane.
func TestShardRoutingSpreadsConcurrentLoad(t *testing.T) {
	o := obs.New()
	s := newTestServer(t, Options{Window: 200 * time.Microsecond, Shards: 4, MaxInflight: 4, Obs: o})
	const clients = 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := binaryRequest(randRows(2, int64(c)))
			var dst []byte
			for i := 0; i < 200; i++ {
				out, err := s.ServeBytes(req, true, dst[:0])
				if err != nil && !errors.Is(err, ErrShed) {
					t.Errorf("client %d: %v", c, err)
					return
				}
				dst = out
			}
		}(c)
	}
	wg.Wait()
	// The striped counters must account for every admitted request across
	// however many shards served them.
	snap := o.Metrics().Snapshot()
	reqs, _ := snap.Counter(obs.MetricServeRequests)
	shed, _ := snap.Counter(obs.MetricServeShed)
	if reqs+shed != clients*200 {
		t.Fatalf("requests %d + shed %d != %d issued", reqs, shed, clients*200)
	}
	if reqs == 0 {
		t.Fatal("no request was admitted")
	}
}

// TestAllShardsSaturatedSheds is the burst-shedding contract: when every
// shard's admission semaphore is full, a new request must get a fast 429
// (ErrShed), never a hang, and the shed counter must sum correctly across
// stripes.
func TestAllShardsSaturatedSheds(t *testing.T) {
	o := obs.New()
	s := newTestServer(t, Options{Window: -1, Shards: 4, MaxInflight: 4, Obs: o})
	// One slot per shard; hold all four — the state four stuck in-flight
	// requests produce.
	for _, sh := range s.shards {
		if cap(sh.sem) != 1 {
			t.Fatalf("shard has %d slots, want 1 (MaxInflight 4 over 4 shards)", cap(sh.sem))
		}
		sh.sem <- struct{}{}
	}
	defer func() {
		for _, sh := range s.shards {
			<-sh.sem
		}
	}()

	const bursts = 10
	start := time.Now()
	for i := 0; i < bursts; i++ {
		_, err := s.ServeBytes(binaryRequest(randRows(1, int64(i))), true, nil)
		if !errors.Is(err, ErrShed) {
			t.Fatalf("burst %d over a saturated server got %v, want ErrShed", i, err)
		}
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("%d sheds took %v: shedding blocked instead of failing fast", bursts, d)
	}
	if shed, _ := o.Metrics().Snapshot().Counter(obs.MetricServeShed); shed != bursts {
		t.Fatalf("shed counter %d across stripes, want %d", shed, bursts)
	}

	// Releasing one slot on any shard restores service: the fallback probe
	// finds it whatever the request's affinity hint says.
	<-s.shards[2].sem
	if _, err := s.ServeBytes(binaryRequest(randRows(1, 99)), true, nil); err != nil {
		t.Fatalf("request after freeing one shard: %v", err)
	}
	s.shards[2].sem <- struct{}{}
}

// TestReloadSingleGenerationPerBatch is the reload invariant under load:
// a reload mid-traffic (the SIGHUP path) publishes one generation through
// one atomic pointer shared by all shards, and every batch loads it
// exactly once — so every response must match one model's predictions
// wholly, never a row-wise mix of two generations.
func TestReloadSingleGenerationPerBatch(t *testing.T) {
	dir := t.TempDir()
	pathA := saveTestModel(t, dir, "a.json")
	// Model B: same shape, different coefficients (different training
	// seed), so mixed-generation rows would be detectable.
	pB, err := core.Train(synthDataset(80, 77),
		core.TrainOptions{Kind: core.Linear, Seed: 2, Size: core.SizeQuick})
	if err != nil {
		t.Fatalf("training model B: %v", err)
	}
	var bufB bytes.Buffer
	if err := pB.Save(&bufB); err != nil {
		t.Fatalf("saving model B: %v", err)
	}
	pathB := dir + "/b.json"
	if err := os.WriteFile(pathB, bufB.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}

	s := New(Options{Window: time.Millisecond, Shards: 2, MaxBatch: 1024})
	t.Cleanup(func() { s.Stop(context.Background()) })
	if _, err := s.LoadModel(pathA); err != nil {
		t.Fatalf("loading model A: %v", err)
	}

	// Reference responses from each generation.
	req := binaryRequest(randRows(16, 5))
	wantA, err := s.ServeBytes(req, true, nil)
	if err != nil {
		t.Fatalf("baseline A: %v", err)
	}
	if _, err := s.LoadModel(pathB); err != nil {
		t.Fatalf("loading model B: %v", err)
	}
	wantB, err := s.ServeBytes(req, true, nil)
	if err != nil {
		t.Fatalf("baseline B: %v", err)
	}
	if bytes.Equal(wantA, wantB) {
		t.Fatal("models A and B predict identically; the test cannot detect mixing")
	}

	// Phantom slots keep allQueued false on every shard so batches really
	// coalesce across requests while reloads race them.
	for _, sh := range s.shards {
		sh.sem <- struct{}{}
	}
	defer func() {
		for _, sh := range s.shards {
			<-sh.sem
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dst []byte
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, err := s.ServeBytes(req, true, dst[:0])
				if err != nil {
					t.Errorf("predict during reload: %v", err)
					return
				}
				if !bytes.Equal(out, wantA) && !bytes.Equal(out, wantB) {
					t.Error("response matches neither generation: a batch mixed models")
					return
				}
				dst = out
			}
		}()
	}
	for i := 0; i < 30; i++ {
		p := pathA
		if i%2 == 0 {
			p = pathB
		}
		if _, err := s.LoadModel(p); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestShardedGracefulDrain: Stop must drain shards in fixed order with
// load spread across all of them — every admitted request completes,
// post-drain requests are refused, and Stop stays idempotent.
func TestShardedGracefulDrain(t *testing.T) {
	s := newTestServer(t, Options{Window: time.Millisecond, Shards: 4, MaxBatch: 1024})
	const clients = 8
	done := make([]int, clients)
	var wg, ready sync.WaitGroup
	ready.Add(clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := binaryRequest(randRows(2, int64(c)))
			var dst []byte
			for {
				out, err := s.ServeBytes(req, true, dst[:0])
				switch {
				case err == nil:
					if done[c] == 0 {
						ready.Done()
					}
					done[c]++
					dst = out
				case errors.Is(err, ErrShed), errors.Is(err, ErrDraining):
					return
				default:
					t.Errorf("client %d during drain: %v", c, err)
					return
				}
			}
		}(c)
	}
	ready.Wait()
	if err := s.Stop(context.Background()); err != nil {
		t.Fatalf("stop: %v", err)
	}
	wg.Wait()
	for c, n := range done {
		if n == 0 {
			t.Errorf("client %d never completed a request before the drain", c)
		}
	}
	_, err := s.ServeBytes(binaryRequest(randRows(1, 9)), true, nil)
	if !errors.Is(err, ErrShed) && !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain request got %v, want shed/draining", err)
	}
	if err := s.Stop(context.Background()); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

// TestMaxInflightRoundsUpToShards documents the cap resolution: the total
// stays at least what the caller asked for, split evenly.
func TestMaxInflightRoundsUpToShards(t *testing.T) {
	o := Options{Shards: 4, MaxInflight: 10}.withDefaults()
	if o.MaxInflight != 12 {
		t.Fatalf("MaxInflight resolved to %d, want 12 (10 rounded up to a multiple of 4)", o.MaxInflight)
	}
	s := New(o)
	t.Cleanup(func() { s.Stop(context.Background()) })
	for _, sh := range s.shards {
		if cap(sh.sem) != 3 {
			t.Fatalf("shard slots %d, want 3", cap(sh.sem))
		}
	}
}
