//go:build race

package serve

// Under the race detector sync.Pool deliberately drops a quarter of Puts,
// so pooled fast paths re-allocate at random and steady-state allocation
// counts are meaningless. The zero-alloc guards skip themselves here; the
// no-race run of the suite still enforces them.
const raceEnabled = true
