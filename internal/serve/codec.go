package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"unsafe"

	"repro/internal/ml"
)

// Request/response content types. JSON is the convenience surface; the
// raw little-endian float64 format is the wire fast path — decoding it is
// a bounds check and a copy, which is what lets one core sustain 100k+
// predictions/sec without burning itself on float parsing.
const (
	// ContentJSON marks a JSON payload: {"rows": [[f, ...], ...]} (the
	// "rows" wrapper is optional). The response mirrors it as
	// {"rows": n, "vert": [...], "horiz": [...], "avg": [...]}.
	ContentJSON = "application/json"
	// ContentF64 marks the binary payload: uint32 row count, uint32
	// column count, then rows×cols little-endian float64 values. The
	// response is uint32 row count followed by the vert, horiz and avg
	// sections, each rows float64 values.
	ContentF64 = "application/x-congest-f64"
)

// ErrBadPayload wraps every request-decoding failure; the HTTP layer maps
// it to 400.
var ErrBadPayload = errors.New("serve: malformed request payload")

// unsafeString views b as a string without copying. The bytes must not be
// mutated while the string is live; the only caller hands it straight to
// strconv.ParseFloat, which does not retain its argument.
func unsafeString(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// decodeF64 parses the binary feature payload into m, reusing m's backing
// array. Row and column counts are validated against the actual body
// length before any copy, and every value must be finite — models fed NaN
// would dutifully emit NaN, so hostile bytes are stopped at the door.
func decodeF64(b []byte, m *ml.Matrix) error {
	if len(b) < 8 {
		return fmt.Errorf("%w: binary header truncated (%d bytes)", ErrBadPayload, len(b))
	}
	rows := int(binary.LittleEndian.Uint32(b))
	cols := int(binary.LittleEndian.Uint32(b[4:]))
	if rows < 0 || cols < 0 || (rows > 0 && cols > (len(b)-8)/8/rows) {
		return fmt.Errorf("%w: binary shape %d x %d exceeds body", ErrBadPayload, rows, cols)
	}
	if want := 8 + 8*rows*cols; want != len(b) {
		return fmt.Errorf("%w: binary body is %d bytes, shape %d x %d needs %d",
			ErrBadPayload, len(b), rows, cols, want)
	}
	if rows == 0 {
		m.Reset(0, cols)
		return nil
	}
	m.Reset(rows, cols)
	for i := range m.Data {
		v := math.Float64frombits(binary.LittleEndian.Uint64(b[8+8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite feature value at flat index %d", ErrBadPayload, i)
		}
		m.Data[i] = v
	}
	return nil
}

// appendF64Response appends the binary response (row count + the three
// result sections) to dst and returns it. Allocation-free once dst has
// capacity.
func appendF64Response(dst []byte, vert, horiz, avg []float64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vert)))
	for _, s := range [3][]float64{vert, horiz, avg} {
		for _, v := range s {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

// jsonCursor is a hand-rolled scanner for the one JSON shape /predict
// accepts: an array of equal-length number arrays, optionally wrapped as
// {"rows": ...}. encoding/json would allocate per token on this path;
// the cursor parses into the pooled matrix with zero steady-state
// allocations and rejects everything outside that grammar.
type jsonCursor struct {
	b []byte
	i int
}

func (c *jsonCursor) ws() {
	for c.i < len(c.b) {
		switch c.b[c.i] {
		case ' ', '\t', '\n', '\r':
			c.i++
		default:
			return
		}
	}
}

// eat consumes ch or fails.
func (c *jsonCursor) eat(ch byte) error {
	if c.i >= len(c.b) || c.b[c.i] != ch {
		return fmt.Errorf("%w: want %q at offset %d", ErrBadPayload, string(ch), c.i)
	}
	c.i++
	return nil
}

// peek returns the next byte without consuming (0 at end of input).
func (c *jsonCursor) peek() byte {
	if c.i >= len(c.b) {
		return 0
	}
	return c.b[c.i]
}

// number scans one JSON number and parses it with strconv through an
// unsafe string view (no copy, no allocation).
func (c *jsonCursor) number() (float64, error) {
	start := c.i
	for c.i < len(c.b) {
		switch ch := c.b[c.i]; {
		case ch >= '0' && ch <= '9', ch == '+', ch == '-', ch == '.', ch == 'e', ch == 'E':
			c.i++
		default:
			goto done
		}
	}
done:
	if c.i == start {
		return 0, fmt.Errorf("%w: want a number at offset %d", ErrBadPayload, start)
	}
	v, err := strconv.ParseFloat(unsafeString(c.b[start:c.i]), 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad number at offset %d", ErrBadPayload, start)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("%w: non-finite number at offset %d", ErrBadPayload, start)
	}
	return v, nil
}

// decodeJSONRows parses the JSON feature payload into m, reusing m's
// backing array. Rows must be rectangular: the first row fixes the width
// and any later row that disagrees rejects the payload (the model layer
// re-checks width against the trained feature count).
func decodeJSONRows(b []byte, m *ml.Matrix) error {
	c := &jsonCursor{b: b}
	c.ws()
	wrapped := false
	if c.peek() == '{' {
		wrapped = true
		c.i++
		c.ws()
		const key = `"rows"`
		if c.i+len(key) > len(b) || string(b[c.i:c.i+len(key)]) != key {
			return fmt.Errorf("%w: want a %s key at offset %d", ErrBadPayload, key, c.i)
		}
		c.i += len(key)
		c.ws()
		if err := c.eat(':'); err != nil {
			return err
		}
		c.ws()
	}
	if err := c.eat('['); err != nil {
		return err
	}
	data := m.Data[:0]
	rows, cols := 0, 0
	c.ws()
	if c.peek() != ']' {
		for {
			if err := c.eat('['); err != nil {
				return err
			}
			width := 0
			c.ws()
			if c.peek() != ']' {
				for {
					c.ws()
					v, err := c.number()
					if err != nil {
						return err
					}
					data = append(data, v)
					width++
					c.ws()
					if c.peek() != ',' {
						break
					}
					c.i++
				}
			}
			if err := c.eat(']'); err != nil {
				return err
			}
			if rows == 0 {
				cols = width
			} else if width != cols {
				return fmt.Errorf("%w: ragged batch: row %d has %d values, row 0 has %d",
					ErrBadPayload, rows, width, cols)
			}
			rows++
			c.ws()
			if c.peek() != ',' {
				break
			}
			c.i++
			c.ws()
		}
	}
	if err := c.eat(']'); err != nil {
		return err
	}
	c.ws()
	if wrapped {
		if err := c.eat('}'); err != nil {
			return err
		}
		c.ws()
	}
	if c.i != len(b) {
		return fmt.Errorf("%w: trailing bytes at offset %d", ErrBadPayload, c.i)
	}
	m.Data = data
	m.Rows, m.Cols = rows, cols
	return nil
}

// appendJSONResponse appends the JSON response document to dst and
// returns it. strconv.AppendFloat writes the shortest round-trippable
// form; nothing allocates once dst has capacity.
func appendJSONResponse(dst []byte, vert, horiz, avg []float64) []byte {
	dst = append(dst, `{"rows":`...)
	dst = strconv.AppendInt(dst, int64(len(vert)), 10)
	dst = append(dst, `,"vert":`...)
	dst = appendFloats(dst, vert)
	dst = append(dst, `,"horiz":`...)
	dst = appendFloats(dst, horiz)
	dst = append(dst, `,"avg":`...)
	dst = appendFloats(dst, avg)
	dst = append(dst, '}', '\n')
	return dst
}

func appendFloats(dst []byte, vals []float64) []byte {
	dst = append(dst, '[')
	for i, v := range vals {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	return append(dst, ']')
}
