package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/obs"
)

// synthDataset builds a small synthetic training set with the library's
// real 302-feature layout: the serving tests need a structurally valid
// predictor, not an accurate one.
func synthDataset(n int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.New()
	for i := 0; i < n; i++ {
		f := make([]float64, features.NumFeatures)
		for j := range f {
			f[j] = rng.NormFloat64()
		}
		v := 20 + 5*f[0] - 3*f[1] + rng.NormFloat64()
		h := 18 + 4*f[2] + 2*f[0] + rng.NormFloat64()
		ds.Samples = append(ds.Samples, &dataset.Sample{
			Design: "synthetic", OpID: i, Features: f,
			VertPct: v, HorizPct: h, AvgPct: (v + h) / 2,
			ReplicaRoot: -1,
		})
	}
	return ds
}

var (
	testPredOnce sync.Once
	testPred     *core.Predictor
	testPredErr  error
)

// testPredictor returns a process-wide quick Linear predictor (trained
// once; lasso keeps every test fast).
func testPredictor(t testing.TB) *core.Predictor {
	t.Helper()
	testPredOnce.Do(func() {
		testPred, testPredErr = core.Train(synthDataset(80, 11),
			core.TrainOptions{Kind: core.Linear, Seed: 1, Size: core.SizeQuick})
	})
	if testPredErr != nil {
		t.Fatalf("training test predictor: %v", testPredErr)
	}
	return testPred
}

// saveTestModel writes the shared test predictor as an artifact file.
func saveTestModel(t testing.TB, dir, name string) string {
	t.Helper()
	p := testPredictor(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("saving model: %v", err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o666); err != nil {
		t.Fatalf("writing model: %v", err)
	}
	return path
}

// newTestServer builds a server with a loaded model; cleanup stops it.
func newTestServer(t testing.TB, opts Options) *Server {
	t.Helper()
	s := New(opts)
	path := saveTestModel(t, t.TempDir(), "model.json")
	if _, err := s.LoadModel(path); err != nil {
		t.Fatalf("loading model: %v", err)
	}
	t.Cleanup(func() { s.Stop(context.Background()) })
	return s
}

// randRows generates feature rows of the library's width.
func randRows(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, features.NumFeatures)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		rows[i] = row
	}
	return rows
}

// binaryRequest encodes rows as a ContentF64 payload.
func binaryRequest(rows [][]float64) []byte {
	cols := 0
	if len(rows) > 0 {
		cols = len(rows[0])
	}
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(rows)))
	b = binary.LittleEndian.AppendUint32(b, uint32(cols))
	for _, row := range rows {
		for _, v := range row {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	}
	return b
}

// jsonRequest encodes rows as the wrapped JSON payload.
func jsonRequest(t testing.TB, rows [][]float64) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{"rows": rows})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// decodeF64Response splits a binary response into its three sections.
func decodeF64Response(t testing.TB, b []byte) (vert, horiz, avg []float64) {
	t.Helper()
	if len(b) < 4 {
		t.Fatalf("binary response truncated: %d bytes", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if want := 4 + 3*8*n; want != len(b) {
		t.Fatalf("binary response is %d bytes, want %d for %d rows", len(b), want, n)
	}
	sec := func(k int) []float64 {
		out := make([]float64, n)
		off := 4 + 8*k*n
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off+8*i:]))
		}
		return out
	}
	return sec(0), sec(1), sec(2)
}

func TestServeBytesMatchesPredictSample(t *testing.T) {
	s := newTestServer(t, Options{Window: -1})
	rows := randRows(9, 3)
	p := testPredictor(t)

	out, err := s.ServeBytes(binaryRequest(rows), true, nil)
	if err != nil {
		t.Fatalf("ServeBytes(binary): %v", err)
	}
	vert, horiz, avg := decodeF64Response(t, out)
	for i, row := range rows {
		v, h, a := p.PredictSample(row)
		if vert[i] != v || horiz[i] != h || avg[i] != a {
			t.Fatalf("row %d: served (%v %v %v) want (%v %v %v)", i, vert[i], horiz[i], avg[i], v, h, a)
		}
	}

	// The JSON surface must agree with the binary one to full round-trip
	// precision (the encoder emits shortest-round-trip forms).
	jout, err := s.ServeBytes(jsonRequest(t, rows), false, nil)
	if err != nil {
		t.Fatalf("ServeBytes(json): %v", err)
	}
	var resp struct {
		Rows  int       `json:"rows"`
		Vert  []float64 `json:"vert"`
		Horiz []float64 `json:"horiz"`
		Avg   []float64 `json:"avg"`
	}
	if err := json.Unmarshal(jout, &resp); err != nil {
		t.Fatalf("response JSON: %v", err)
	}
	if resp.Rows != len(rows) {
		t.Fatalf("response rows %d, want %d", resp.Rows, len(rows))
	}
	for i := range rows {
		if resp.Vert[i] != vert[i] || resp.Horiz[i] != horiz[i] || resp.Avg[i] != avg[i] {
			t.Fatalf("row %d: JSON response diverges from binary", i)
		}
	}
}

func TestCoalescingFormsOneBatch(t *testing.T) {
	o := obs.New()
	// One shard so every client funnels into the same batcher lane.
	s := newTestServer(t, Options{Window: 40 * time.Millisecond, MaxBatch: 1024, Shards: 1, Obs: o})

	// A phantom admission slot keeps allQueued false, so the batcher must
	// wait out the window — every client then lands in the same batch.
	s.shards[0].sem <- struct{}{}
	defer func() { <-s.shards[0].sem }()

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if _, err := s.ServeBytes(binaryRequest(randRows(3, int64(c))), true, nil); err != nil {
				t.Errorf("client %d: %v", c, err)
			}
		}(c)
	}
	wg.Wait()
	snap := o.Metrics().Snapshot()
	batches, _ := snap.Counter(obs.MetricServeBatches)
	preds, _ := snap.Counter(obs.MetricServePredictions)
	if preds != clients*3 {
		t.Fatalf("predictions counter %d, want %d", preds, clients*3)
	}
	// All clients launch before the 40ms window closes, so they must land
	// in far fewer batches than requests; 8 singleton batches would mean
	// coalescing never happened.
	if batches >= clients {
		t.Fatalf("%d requests produced %d batches: no coalescing", clients, batches)
	}
	h := snap.Histogram(obs.MetricServeBatchRows)
	if h == nil || h.Max < 6 {
		t.Fatalf("max batch rows %v, want a coalesced batch of at least 2 requests", h)
	}
}

func TestClosedLoopFlushesEarly(t *testing.T) {
	// With one client in flight the batcher can prove no companion is
	// coming (allQueued) and must flush immediately — a lone request never
	// pays the window, even an absurd one.
	s := newTestServer(t, Options{Window: 5 * time.Second, MaxBatch: 1024})
	start := time.Now()
	if _, err := s.ServeBytes(binaryRequest(randRows(2, 4)), true, nil); err != nil {
		t.Fatalf("ServeBytes: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("lone request took %v: waited out the window instead of early-flushing", d)
	}
}

func TestBatchSizeCapClosesEarly(t *testing.T) {
	o := obs.New()
	// Window far longer than the test: only the row cap can close a batch.
	s := newTestServer(t, Options{Window: 5 * time.Second, MaxBatch: 4, Obs: o})
	out, err := s.ServeBytes(binaryRequest(randRows(16, 5)), true, nil)
	if err != nil {
		t.Fatalf("ServeBytes: %v", err)
	}
	if v, _, _ := decodeF64Response(t, out); len(v) != 16 {
		t.Fatalf("got %d rows back, want 16", len(v))
	}
	if batches, _ := o.Metrics().Snapshot().Counter(obs.MetricServeBatches); batches != 1 {
		t.Fatalf("one oversized request produced %d batches, want 1", batches)
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	o := obs.New()
	s := newTestServer(t, Options{Window: 30 * time.Millisecond, MaxBatch: 1024, Shards: 1, MaxInflight: 2, Obs: o})

	// Hold both admission slots — exactly the state two slow in-flight
	// requests produce — so the next request is shed immediately instead
	// of queueing.
	s.shards[0].sem <- struct{}{}
	s.shards[0].sem <- struct{}{}
	_, err := s.ServeBytes(binaryRequest(randRows(1, 9)), true, nil)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("request over the inflight cap got %v, want ErrShed", err)
	}
	if shed, _ := o.Metrics().Snapshot().Counter(obs.MetricServeShed); shed != 1 {
		t.Fatalf("shed counter %d, want 1", shed)
	}

	// Releasing one slot restores service.
	<-s.shards[0].sem
	if _, err := s.ServeBytes(binaryRequest(randRows(1, 10)), true, nil); err != nil {
		t.Fatalf("request after slot release: %v", err)
	}
	<-s.shards[0].sem
}

func TestBatchShapeRejectedPerRequest(t *testing.T) {
	s := newTestServer(t, Options{Window: -1})

	// Wrong width: typed shape error names both widths.
	narrow := [][]float64{make([]float64, 7)}
	_, err := s.ServeBytes(binaryRequest(narrow), true, nil)
	var shape *core.BatchShapeError
	if !errors.As(err, &shape) {
		t.Fatalf("narrow rows got %v, want *core.BatchShapeError", err)
	}
	if shape.Got != 7 || shape.Want != features.NumFeatures {
		t.Fatalf("shape error %+v, want Got=7 Want=%d", shape, features.NumFeatures)
	}

	// Ragged JSON: rejected at decode with ErrBadPayload.
	_, err = s.ServeBytes([]byte(`[[1,2],[1,2,3]]`), false, nil)
	if !errors.Is(err, ErrBadPayload) {
		t.Fatalf("ragged JSON got %v, want ErrBadPayload", err)
	}
}

func TestNoModelAndEmptyBatch(t *testing.T) {
	s := New(Options{Window: -1})
	t.Cleanup(func() { s.Stop(context.Background()) })
	_, err := s.ServeBytes(binaryRequest(randRows(1, 1)), true, nil)
	if !errors.Is(err, ErrNoModel) {
		t.Fatalf("predict before load got %v, want ErrNoModel", err)
	}
	// Zero rows answer without touching the model at all.
	out, err := s.ServeBytes([]byte(`{"rows": []}`), false, nil)
	if err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if want := `{"rows":0,"vert":[],"horiz":[],"avg":[]}` + "\n"; string(out) != want {
		t.Fatalf("empty batch response %q, want %q", out, want)
	}
}

func TestHotReloadAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := saveTestModel(t, dir, "model.json")
	o := obs.New()
	s := New(Options{Window: -1, Obs: o})
	t.Cleanup(func() { s.Stop(context.Background()) })
	if _, err := s.LoadModel(path); err != nil {
		t.Fatalf("loading model: %v", err)
	}
	req := binaryRequest(randRows(2, 42))
	want, err := s.ServeBytes(req, true, nil)
	if err != nil {
		t.Fatalf("baseline predict: %v", err)
	}

	// Hammer predictions while reloads race: every request must be served
	// by a complete model — identical results, no errors, no downtime.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dst []byte
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, err := s.ServeBytes(req, true, dst[:0])
				if err != nil {
					t.Errorf("predict during reload: %v", err)
					return
				}
				if !bytes.Equal(out, want) {
					t.Error("prediction changed during same-artifact reload")
					return
				}
				dst = out
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Reload(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}

	// An invalid artifact must be rejected with the old model untouched.
	if err := os.WriteFile(path, []byte(`{"kind": 99, "garbage": true}`), 0o666); err != nil {
		t.Fatalf("corrupting artifact: %v", err)
	}
	if _, err := s.Reload(); err == nil {
		t.Fatal("reload of corrupt artifact succeeded, want error")
	}
	close(stop)
	wg.Wait()

	m := s.Model()
	if m == nil || m.Generation != 21 {
		t.Fatalf("model generation %+v, want 21 (1 load + 20 reloads, corrupt one rejected)", m)
	}
	snap := o.Metrics().Snapshot()
	if n, _ := snap.Counter(obs.MetricServeReloads); n != 21 {
		t.Errorf("reload counter %d, want 21", n)
	}
	if n, _ := snap.Counter(obs.MetricServeReloadErrors); n != 1 {
		t.Errorf("reload-error counter %d, want 1", n)
	}
	// Still serving after the rejected reload.
	if _, err := s.ServeBytes(req, true, nil); err != nil {
		t.Fatalf("predict after rejected reload: %v", err)
	}
}

func TestGracefulDrainCompletesInflight(t *testing.T) {
	s := newTestServer(t, Options{Window: time.Millisecond, MaxBatch: 1024})

	// Clients hammer predictions while Stop races them: every request
	// admitted before the drain must complete with a real answer — the
	// batcher flushes its final window instead of abandoning jobs — and
	// requests arriving after it must be refused, never dropped.
	const clients = 4
	done := make([]int, clients)
	var wg, ready sync.WaitGroup
	ready.Add(clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := binaryRequest(randRows(2, int64(c)))
			var dst []byte
			for {
				out, err := s.ServeBytes(req, true, dst[:0])
				switch {
				case err == nil:
					if done[c] == 0 {
						ready.Done()
					}
					done[c]++
					dst = out
				case errors.Is(err, ErrShed), errors.Is(err, ErrDraining):
					return
				default:
					t.Errorf("client %d during drain: %v", c, err)
					return
				}
			}
		}(c)
	}
	// Stop only once every client has a completed request behind it and
	// more in flight — the drain then races live traffic by construction.
	ready.Wait()
	if err := s.Stop(context.Background()); err != nil {
		t.Fatalf("stop: %v", err)
	}
	wg.Wait()
	for c, n := range done {
		if n == 0 {
			t.Errorf("client %d never completed a request before the drain", c)
		}
	}

	// After the drain every new request is refused, not queued.
	_, err := s.ServeBytes(binaryRequest(randRows(1, 9)), true, nil)
	if !errors.Is(err, ErrShed) && !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain request got %v, want shed/draining", err)
	}
	// Stop is idempotent.
	if err := s.Stop(context.Background()); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	dir := t.TempDir()
	path := saveTestModel(t, dir, "model.json")
	o := obs.New()
	s := New(Options{Window: -1, Obs: o})
	t.Cleanup(func() { s.Stop(context.Background()) })
	if _, err := s.LoadModel(path); err != nil {
		t.Fatalf("loading model: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get(ts.URL + "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d: %s", code, body)
	}
	var health struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
		Features   int    `json:"features"`
		Kind       string `json:"kind"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("healthz JSON: %v in %q", err, body)
	}
	if health.Status != "ok" || health.Generation != 1 || health.Features != features.NumFeatures {
		t.Fatalf("healthz %+v, want ok/gen1/%d features", health, features.NumFeatures)
	}

	// JSON predict round trip over real HTTP.
	rows := randRows(3, 2)
	resp, err := http.Post(ts.URL+"/predict", ContentJSON, bytes.NewReader(jsonRequest(t, rows)))
	if err != nil {
		t.Fatalf("POST /predict: %v", err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/predict status %d: %s", resp.StatusCode, rb)
	}
	var pr struct {
		Rows int       `json:"rows"`
		Vert []float64 `json:"vert"`
	}
	if err := json.Unmarshal(rb, &pr); err != nil {
		t.Fatalf("/predict JSON: %v", err)
	}
	if pr.Rows != 3 || len(pr.Vert) != 3 {
		t.Fatalf("/predict answered %d rows, want 3", pr.Rows)
	}

	// Binary predict with the binary content type.
	resp, err = http.Post(ts.URL+"/predict", ContentF64, bytes.NewReader(binaryRequest(rows)))
	if err != nil {
		t.Fatalf("POST /predict (binary): %v", err)
	}
	rb, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != ContentF64 {
		t.Fatalf("binary /predict status %d type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if v, _, _ := decodeF64Response(t, rb); len(v) != 3 {
		t.Fatalf("binary /predict answered %d rows, want 3", len(v))
	}

	// Client data errors are 400s.
	resp, err = http.Post(ts.URL+"/predict", ContentJSON, bytes.NewReader([]byte("not json")))
	if err != nil {
		t.Fatalf("POST bad payload: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad payload status %d, want 400", resp.StatusCode)
	}

	// Reload over HTTP bumps the generation.
	resp, err = http.Post(ts.URL+"/reload", "", nil)
	if err != nil {
		t.Fatalf("POST /reload: %v", err)
	}
	rb, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/reload status %d: %s", resp.StatusCode, rb)
	}
	code, body = get(ts.URL + "/healthz")
	if err := json.Unmarshal([]byte(body), &health); err != nil || health.Generation != 2 {
		t.Fatalf("healthz after reload: %v gen=%d body=%q", err, health.Generation, body)
	}

	// A corrupt artifact rejects over HTTP with 422 and keeps serving.
	if err := os.WriteFile(path, []byte("junk"), 0o666); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/reload", "", nil)
	if err != nil {
		t.Fatalf("POST /reload (corrupt): %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt reload status %d, want 422", resp.StatusCode)
	}
	if code, _ = get(ts.URL + "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after rejected reload: %d", code)
	}

	// The obs debug endpoint is mounted on the same mux.
	code, body = get(ts.URL + "/debug/vars")
	if code != http.StatusOK || !bytes.Contains([]byte(body), []byte("serve.requests")) {
		t.Fatalf("/debug/vars status %d body %q", code, body)
	}
}

func TestStatusForMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrShed, http.StatusTooManyRequests},
		{ErrNoModel, http.StatusServiceUnavailable},
		{ErrDraining, http.StatusServiceUnavailable},
		{fmt.Errorf("wrap: %w", ErrBadPayload), http.StatusBadRequest},
		{&core.BatchShapeError{Row: 0, Got: 3, Want: 302}, http.StatusBadRequest},
		{errors.New("mystery"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
