package serve

// Steady-state allocation guards for the serving hot path: once the job,
// matrix and response pools are warm, the complete /predict path — admit,
// decode, coalesce, predict, encode — must not allocate at all, in both
// wire formats.

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func requireZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc counts are unstable under -race: sync.Pool randomly drops Puts")
	}
	fn() // warm pools and lazily-grown scratch
	if avg := testing.AllocsPerRun(100, fn); avg != 0 {
		t.Errorf("%s: %v allocs/op in steady state, want 0", name, avg)
	}
}

// zeroAllocServer disables the coalescing window: with one closed-loop
// caller the batcher takes the queued job immediately, so the measurement
// sees the full predict path without timer sleeps. (The timer itself is
// reused and measured allocation-free by the windowed benchmark.)
func zeroAllocServer(t *testing.T) *Server {
	t.Helper()
	return newTestServer(t, Options{Window: -1})
}

func TestServeBytesZeroAllocSharded(t *testing.T) {
	// The sharded admission path — affinity hint, per-shard semaphore,
	// per-shard batcher — must stay allocation-free too: the zero-alloc
	// guarantee survives scale-out.
	s := newTestServer(t, Options{Window: -1, Shards: 4})
	req := binaryRequest(randRows(32, 41))
	var dst []byte
	requireZeroAllocs(t, "ServeBytes/sharded", func() {
		out, err := s.ServeBytes(req, true, dst[:0])
		if err != nil {
			t.Fatalf("ServeBytes: %v", err)
		}
		dst = out
	})
}

func TestServeBytesZeroAllocBinary(t *testing.T) {
	s := zeroAllocServer(t)
	req := binaryRequest(randRows(64, 17))
	var dst []byte
	requireZeroAllocs(t, "ServeBytes/binary", func() {
		out, err := s.ServeBytes(req, true, dst[:0])
		if err != nil {
			t.Fatalf("ServeBytes: %v", err)
		}
		dst = out
	})
}

func TestServeBytesZeroAllocJSON(t *testing.T) {
	s := zeroAllocServer(t)
	req := jsonRequest(t, randRows(16, 23))
	var dst []byte
	requireZeroAllocs(t, "ServeBytes/json", func() {
		out, err := s.ServeBytes(req, false, dst[:0])
		if err != nil {
			t.Fatalf("ServeBytes: %v", err)
		}
		dst = out
	})
}

func TestServeBytesZeroAllocWindowed(t *testing.T) {
	// A tiny real window exercises the timer Reset/Stop/drain path; it
	// must reuse the runtime timer, not allocate one per batch. A phantom
	// admission slot keeps allQueued false so the batcher actually waits
	// out the window instead of early-flushing (one shard, so the
	// phantom and the requests share a lane).
	s := newTestServer(t, Options{Window: 20 * time.Microsecond, Shards: 1})
	s.shards[0].sem <- struct{}{}
	defer func() { <-s.shards[0].sem }()
	req := binaryRequest(randRows(8, 29))
	var dst []byte
	requireZeroAllocs(t, "ServeBytes/windowed", func() {
		out, err := s.ServeBytes(req, true, dst[:0])
		if err != nil {
			t.Fatalf("ServeBytes: %v", err)
		}
		dst = out
	})
}

func TestServeBytesZeroAllocWithRecorder(t *testing.T) {
	// The flight recorder observes the registry from outside the request
	// path: with a recorder attached (and having sampled), ServeBytes must
	// still be allocation-free — the hot path writes the same atomics
	// whether or not anything is reading them. Samples are taken manually
	// around the measurement, not concurrently, because AllocsPerRun counts
	// mallocs process-wide and a background sampler would pollute it.
	o := obs.New()
	s := newTestServer(t, Options{Window: -1, Shards: 2, Obs: o})
	rec := obs.NewRecorder(o.Metrics(), obs.RecorderOptions{Capacity: 16})
	o.Rec = rec
	req := binaryRequest(randRows(32, 53))
	var dst []byte
	rec.Sample() // a populated ring, as in production
	requireZeroAllocs(t, "ServeBytes/recorder", func() {
		out, err := s.ServeBytes(req, true, dst[:0])
		if err != nil {
			t.Fatalf("ServeBytes: %v", err)
		}
		dst = out
	})
	// The recorder saw the traffic the measurement generated.
	s2 := rec.Sample()
	found := false
	for _, c := range s2.Counters {
		if c.Name == obs.MetricServeRequests && c.Delta > 0 {
			found = true
		}
	}
	if !found {
		t.Error("recorder window shows no serve.requests delta after the measured traffic")
	}
}

func TestShedPathZeroAlloc(t *testing.T) {
	// Rejections must be even cheaper than service: the 429 path cannot
	// allocate, or overload would cause collection pressure exactly when
	// the server can least afford it.
	s := newTestServer(t, Options{Window: -1, Shards: 1, MaxInflight: 1})
	s.shards[0].sem <- struct{}{} // the one slot is taken: everything else sheds
	defer func() { <-s.shards[0].sem }()
	req := binaryRequest(randRows(1, 37))
	requireZeroAllocs(t, "ServeBytes/shed", func() {
		if _, err := s.ServeBytes(req, true, nil); err != ErrShed {
			t.Fatalf("want ErrShed, got %v", err)
		}
	})
}
