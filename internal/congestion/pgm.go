package congestion

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/fpga"
)

// WritePGM emits the metric as a binary PGM (P5) grayscale image, one pixel
// per tile, rows top-down like the device view. Intensity saturates at
// maxPct (use 200 to match the ASCII ramp); overfull tiles render white.
// PGM keeps the export dependency-free while remaining openable by any
// image viewer, matching how the paper presents Figs. 1 and 6.
func (m *Map) WritePGM(w io.Writer, mt Metric, maxPct float64) error {
	if maxPct <= 0 {
		maxPct = 200
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", m.Dev.Cols, m.Dev.Rows); err != nil {
		return err
	}
	for y := m.Dev.Rows - 1; y >= 0; y-- {
		for x := 0; x < m.Dev.Cols; x++ {
			v := m.At(mt, fpga.XY{X: x, Y: y}) / maxPct
			if v > 1 {
				v = 1
			}
			if v < 0 {
				v = 0
			}
			if err := bw.WriteByte(byte(v * 255)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
