// Package congestion defines the per-tile routing-congestion map the whole
// reproduction revolves around: for every fabric tile, the percentage of
// vertical and horizontal routing resources demanded by the routed design.
// Values above 100 % mean the router had to detour around the tile — the
// exact definition the paper takes from Vivado's congestion reports.
package congestion

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/fpga"
)

// Map holds vertical and horizontal congestion percentages per tile,
// indexed [x][y].
type Map struct {
	Dev *fpga.Device
	V   [][]float64
	H   [][]float64
}

// New returns a zeroed congestion map for a device.
func New(dev *fpga.Device) *Map {
	m := &Map{Dev: dev, V: make([][]float64, dev.Cols), H: make([][]float64, dev.Cols)}
	for x := 0; x < dev.Cols; x++ {
		m.V[x] = make([]float64, dev.Rows)
		m.H[x] = make([]float64, dev.Rows)
	}
	return m
}

// VAt returns the vertical congestion percentage at a tile.
func (m *Map) VAt(p fpga.XY) float64 { return m.V[p.X][p.Y] }

// HAt returns the horizontal congestion percentage at a tile.
func (m *Map) HAt(p fpga.XY) float64 { return m.H[p.X][p.Y] }

// AvgAt returns the paper's "Avg (V, H)" metric at a tile: the mean of the
// two directional percentages.
func (m *Map) AvgAt(p fpga.XY) float64 { return (m.V[p.X][p.Y] + m.H[p.X][p.Y]) / 2 }

// Metric selects one of the three congestion views of a map.
type Metric int

const (
	// Vertical selects the vertical congestion percentage.
	Vertical Metric = iota
	// Horizontal selects the horizontal congestion percentage.
	Horizontal
	// Average selects the mean of the two directions.
	Average
)

func (mt Metric) String() string {
	switch mt {
	case Vertical:
		return "Vertical"
	case Horizontal:
		return "Horizontal"
	case Average:
		return "Avg (V, H)"
	}
	return "?"
}

// At returns the selected metric at a tile.
func (m *Map) At(mt Metric, p fpga.XY) float64 {
	switch mt {
	case Vertical:
		return m.VAt(p)
	case Horizontal:
		return m.HAt(p)
	default:
		return m.AvgAt(p)
	}
}

// Summary aggregates a congestion metric across the die.
type Summary struct {
	Max, Min, Mean float64
}

// Summarize computes the min/max/mean of a metric over all tiles.
func (m *Map) Summarize(mt Metric) Summary {
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1)}
	n := 0
	for x := 0; x < m.Dev.Cols; x++ {
		for y := 0; y < m.Dev.Rows; y++ {
			v := m.At(mt, fpga.XY{X: x, Y: y})
			if v > s.Max {
				s.Max = v
			}
			if v < s.Min {
				s.Min = v
			}
			s.Mean += v
			n++
		}
	}
	if n > 0 {
		s.Mean /= float64(n)
	}
	return s
}

// MaxCongestion returns the largest of the vertical and horizontal maxima —
// the paper's "Max Congestion (%)" column.
func (m *Map) MaxCongestion() float64 {
	v := m.Summarize(Vertical).Max
	h := m.Summarize(Horizontal).Max
	return math.Max(v, h)
}

// CongestedTiles counts tiles whose metric exceeds the threshold (the
// paper's "#Congested CLBs (>100%)" uses threshold 100 on either
// direction).
func (m *Map) CongestedTiles(threshold float64) int {
	n := 0
	for x := 0; x < m.Dev.Cols; x++ {
		for y := 0; y < m.Dev.Rows; y++ {
			if m.V[x][y] > threshold || m.H[x][y] > threshold {
				n++
			}
		}
	}
	return n
}

// RadialProfile bins tiles by normalized distance from the die center and
// returns the mean of the metric per bin — the quantitative form of the
// paper's Fig. 5 (low congestion at the margin, high in the middle).
func (m *Map) RadialProfile(mt Metric, bins int) []float64 {
	if bins < 1 {
		bins = 1
	}
	sums := make([]float64, bins)
	counts := make([]int, bins)
	for x := 0; x < m.Dev.Cols; x++ {
		for y := 0; y < m.Dev.Rows; y++ {
			p := fpga.XY{X: x, Y: y}
			b := int(m.Dev.CenterDist(p) * float64(bins))
			if b >= bins {
				b = bins - 1
			}
			sums[b] += m.At(mt, p)
			counts[b]++
		}
	}
	for i := range sums {
		if counts[i] > 0 {
			sums[i] /= float64(counts[i])
		}
	}
	return sums
}

// Percentile returns the q-th percentile (0..100) of the metric across
// tiles.
func (m *Map) Percentile(mt Metric, q float64) float64 {
	var vals []float64
	for x := 0; x < m.Dev.Cols; x++ {
		for y := 0; y < m.Dev.Rows; y++ {
			vals = append(vals, m.At(mt, fpga.XY{X: x, Y: y}))
		}
	}
	sort.Float64s(vals)
	if len(vals) == 0 {
		return 0
	}
	idx := int(q / 100 * float64(len(vals)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

// heatRamp maps intensity 0..1 to a character, mimicking the color ramp of
// Vivado's congestion view.
var heatRamp = []byte(" .:-=+*#%@")

// RenderASCII draws the metric as a downsampled character heat map, scaled
// so 200 % saturates the ramp. Rows print top-down like the Vivado device
// view; each character covers a cellW x cellH tile block.
func (m *Map) RenderASCII(mt Metric, cellW, cellH int) string {
	if cellW < 1 {
		cellW = 1
	}
	if cellH < 1 {
		cellH = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s congestion (%% of routing capacity), '%c'=0%% .. '%c'>=200%%\n",
		mt, heatRamp[0], heatRamp[len(heatRamp)-1])
	for yTop := m.Dev.Rows - 1; yTop >= 0; yTop -= cellH {
		for x0 := 0; x0 < m.Dev.Cols; x0 += cellW {
			sum, n := 0.0, 0
			for dx := 0; dx < cellW && x0+dx < m.Dev.Cols; dx++ {
				for dy := 0; dy < cellH && yTop-dy >= 0; dy++ {
					sum += m.At(mt, fpga.XY{X: x0 + dx, Y: yTop - dy})
					n++
				}
			}
			v := sum / float64(n) / 200.0
			if v > 1 {
				v = 1
			}
			if v < 0 {
				v = 0
			}
			idx := int(v * float64(len(heatRamp)-1))
			b.WriteByte(heatRamp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
