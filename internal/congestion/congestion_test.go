package congestion

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fpga"
)

func testMap() *Map {
	dev := fpga.XC7Z020()
	m := New(dev)
	// Deterministic gradient: hotter toward the center.
	for x := 0; x < dev.Cols; x++ {
		for y := 0; y < dev.Rows; y++ {
			d := dev.CenterDist(fpga.XY{X: x, Y: y})
			m.V[x][y] = 150 * (1 - d)
			m.H[x][y] = 100 * (1 - d)
		}
	}
	return m
}

func TestMetricsAt(t *testing.T) {
	m := testMap()
	p := fpga.XY{X: 5, Y: 5}
	if m.At(Vertical, p) != m.VAt(p) || m.At(Horizontal, p) != m.HAt(p) {
		t.Error("At() disagrees with direct accessors")
	}
	want := (m.VAt(p) + m.HAt(p)) / 2
	if m.AvgAt(p) != want || m.At(Average, p) != want {
		t.Error("AvgAt wrong")
	}
}

func TestMetricString(t *testing.T) {
	if Vertical.String() != "Vertical" || Horizontal.String() != "Horizontal" {
		t.Error("metric names wrong")
	}
	if !strings.Contains(Average.String(), "V, H") {
		t.Errorf("Average.String() = %q", Average.String())
	}
}

func TestSummarize(t *testing.T) {
	m := testMap()
	s := m.Summarize(Vertical)
	if s.Min < 0 || s.Max > 150.01 || s.Mean <= s.Min || s.Mean >= s.Max {
		t.Errorf("summary out of range: %+v", s)
	}
	if m.MaxCongestion() != s.Max {
		t.Errorf("MaxCongestion = %v, want V max %v (V dominates here)", m.MaxCongestion(), s.Max)
	}
}

func TestCongestedTiles(t *testing.T) {
	m := testMap()
	over100 := m.CongestedTiles(100)
	over140 := m.CongestedTiles(140)
	if over100 <= over140 {
		t.Errorf("higher threshold must catch fewer tiles: %d vs %d", over100, over140)
	}
	if m.CongestedTiles(1000) != 0 {
		t.Error("nothing should exceed 1000%")
	}
}

func TestRadialProfileCenterHot(t *testing.T) {
	m := testMap()
	prof := m.RadialProfile(Vertical, 6)
	if len(prof) != 6 {
		t.Fatalf("profile bins = %d", len(prof))
	}
	if prof[0] <= prof[len(prof)-1] {
		t.Errorf("center bin %v must exceed margin bin %v", prof[0], prof[len(prof)-1])
	}
	for i := 1; i < len(prof); i++ {
		if prof[i] > prof[i-1]+1e-9 {
			t.Errorf("profile not monotone at bin %d: %v", i, prof)
		}
	}
}

func TestPercentile(t *testing.T) {
	m := testMap()
	p0 := m.Percentile(Vertical, 0)
	p50 := m.Percentile(Vertical, 50)
	p100 := m.Percentile(Vertical, 100)
	if !(p0 <= p50 && p50 <= p100) {
		t.Errorf("percentiles not ordered: %v %v %v", p0, p50, p100)
	}
	s := m.Summarize(Vertical)
	if p100 != s.Max || p0 != s.Min {
		t.Errorf("extreme percentiles %v/%v != min/max %v/%v", p0, p100, s.Min, s.Max)
	}
}

func TestRenderASCII(t *testing.T) {
	m := testMap()
	out := m.RenderASCII(Average, 2, 4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	wantRows := (m.Dev.Rows + 3) / 4
	if len(lines)-1 != wantRows {
		t.Errorf("rendered %d rows, want %d", len(lines)-1, wantRows)
	}
	wantCols := (m.Dev.Cols + 1) / 2
	if len(lines[1]) != wantCols {
		t.Errorf("rendered %d cols, want %d", len(lines[1]), wantCols)
	}
	// The center of the map must render hotter than the corner.
	mid := lines[1+wantRows/2]
	if !strings.ContainsAny(mid, "=+*#%@") {
		t.Errorf("center row %q shows no heat", mid)
	}
	// Degenerate cell sizes clamp instead of crashing.
	_ = m.RenderASCII(Vertical, 0, 0)
}

func TestZeroMap(t *testing.T) {
	m := New(fpga.XC7Z020())
	s := m.Summarize(Average)
	if s.Max != 0 || s.Min != 0 || s.Mean != 0 {
		t.Errorf("zero map summary %+v", s)
	}
	if m.CongestedTiles(0) != 0 {
		t.Error("zero map has congested tiles at threshold 0")
	}
}

func TestWritePGM(t *testing.T) {
	m := testMap()
	var buf bytes.Buffer
	if err := m.WritePGM(&buf, Vertical, 200); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	header := fmt.Sprintf("P5\n%d %d\n255\n", m.Dev.Cols, m.Dev.Rows)
	if !bytes.HasPrefix(data, []byte(header)) {
		t.Fatalf("bad header: %q", data[:20])
	}
	if len(data) != len(header)+m.Dev.Cols*m.Dev.Rows {
		t.Fatalf("payload size %d", len(data)-len(header))
	}
	// The center pixel must be brighter than a corner pixel.
	px := func(x, yTopDown int) byte { return data[len(header)+yTopDown*m.Dev.Cols+x] }
	if px(m.Dev.Cols/2, m.Dev.Rows/2) <= px(0, 0) {
		t.Error("center not brighter than corner")
	}
	// Degenerate maxPct defaults rather than dividing by zero.
	if err := m.WritePGM(&buf, Average, 0); err != nil {
		t.Fatal(err)
	}
}
