// Package backtrace reproduces the paper's automatic back-tracing flow
// (Fig. 3): starting from physical information — per-CLB congestion metrics
// and tile coordinates — it gathers the net names on the output pins of
// each placed cell, parses the HDL-level provenance embedded in those names
// back to IR operation IDs, and so establishes the one-to-one relationship
// between IR operations and congestion labels that the training dataset is
// built from. Operations are further traceable to source statements through
// their recorded source locations.
package backtrace

import (
	"sort"

	"repro/internal/flow"
	"repro/internal/fpga"
	"repro/internal/ir"
	"repro/internal/rtl"
)

// OpCongestion is one back-traced sample: an IR operation together with the
// congestion metrics of the CLB tile its hardware landed in.
type OpCongestion struct {
	Op       *ir.Op
	Tile     fpga.XY
	VertPct  float64
	HorizPct float64
	AvgPct   float64
	// Margin marks operations placed in the outer margin band of the die,
	// the candidates for the paper's marginal-operation filtering.
	Margin bool
}

// Trace back-traces every IR operation of a completed implementation run to
// its congestion label. The result is sorted by operation ID.
func Trace(res *flow.Result) []OpCongestion {
	// Step 1 (physical): congestion metrics and coordinates come from
	// res.Routing.Map and res.Placement.
	// Step 2 (netlist): collect the output-pin net of every cell and parse
	// the op ID out of the provenance name, mirroring the paper's
	// get_nets/back-trace scripts.
	opOfCell := make(map[*rtl.Cell][]*ir.Op)
	byID := make(map[int]*ir.Op, res.Mod.NumOps())
	for _, o := range res.Mod.AllOps() {
		byID[o.ID] = o
	}
	for _, n := range res.Netlist.Nets {
		id := rtl.ParseNetOpID(n.Name)
		if id < 0 {
			continue
		}
		if o, ok := byID[id]; ok {
			opOfCell[n.Driver] = append(opOfCell[n.Driver], o)
		}
	}
	// Step 3 (HLS info): operations whose results never leave their cell
	// have no provenance net; fall back to the binder's op->cell map.
	covered := make(map[*ir.Op]bool)
	for _, ops := range opOfCell {
		for _, o := range ops {
			covered[o] = true
		}
	}
	for o, c := range res.Netlist.CellOf {
		if !covered[o] {
			opOfCell[c] = append(opOfCell[c], o)
		}
	}

	radii := res.Netlist.FootprintRadii()
	var out []OpCongestion
	for cell, ops := range opOfCell {
		tile := res.Placement.At(cell)
		v, h := tileCongestion(res, tile, radii[cell.ID])
		for _, o := range ops {
			out = append(out, OpCongestion{
				Op:       o,
				Tile:     tile,
				VertPct:  v,
				HorizPct: h,
				AvgPct:   (v + h) / 2,
				Margin:   res.Config.Dev.IsMargin(tile),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op.ID < out[j].Op.ID })
	return out
}

// tileCongestion reads the congestion label of an operation: the cell's
// own tile averaged with the footprint region its logic and local wiring
// occupy (at least the 7x7 neighborhood, since even a single-tile cell's
// nets terminate within a few tiles of it).
func tileCongestion(res *flow.Result, tile fpga.XY, radius int) (v, h float64) {
	cm := res.Routing.Map
	if radius < 3 {
		radius = 3
	}
	n := 0.0
	for dx := -radius; dx <= radius; dx++ {
		for dy := -radius; dy <= radius; dy++ {
			p := fpga.XY{X: tile.X + dx, Y: tile.Y + dy}
			if !res.Config.Dev.InBounds(p) {
				continue
			}
			v += cm.V[p.X][p.Y]
			h += cm.H[p.X][p.Y]
			n++
		}
	}
	return v / n, h / n
}

// SourceHotspot aggregates back-traced congestion per source line, the
// report the paper surfaces to the designer ("the most congested part of
// the source code").
type SourceHotspot struct {
	Loc    ir.SourceLoc
	Ops    int
	MaxAvg float64
	MeanV  float64
	MeanH  float64
}

// HotspotsBySource groups traced operations by source location, sorted by
// descending maximum average congestion.
func HotspotsBySource(traced []OpCongestion) []SourceHotspot {
	agg := make(map[ir.SourceLoc]*SourceHotspot)
	for _, t := range traced {
		h := agg[t.Op.Src]
		if h == nil {
			h = &SourceHotspot{Loc: t.Op.Src}
			agg[t.Op.Src] = h
		}
		h.Ops++
		h.MeanV += t.VertPct
		h.MeanH += t.HorizPct
		if t.AvgPct > h.MaxAvg {
			h.MaxAvg = t.AvgPct
		}
	}
	out := make([]SourceHotspot, 0, len(agg))
	for _, h := range agg {
		h.MeanV /= float64(h.Ops)
		h.MeanH /= float64(h.Ops)
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxAvg != out[j].MaxAvg {
			return out[i].MaxAvg > out[j].MaxAvg
		}
		if out[i].Loc.File != out[j].Loc.File {
			return out[i].Loc.File < out[j].Loc.File
		}
		return out[i].Loc.Line < out[j].Loc.Line
	})
	return out
}
