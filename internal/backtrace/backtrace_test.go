package backtrace

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/flow"
	"repro/internal/ir"
)

func runSmall(t *testing.T) *flow.Result {
	t.Helper()
	m := ir.NewModule("small")
	b := ir.NewBuilder(m.NewFunction("f")).At("s.cpp", 1)
	p := b.Port("p", 16)
	a := b.Array("mem", 32, 16, 2)
	var outs []*ir.Op
	for i := 0; i < 10; i++ {
		b.Line(10 + i)
		v := b.Load(a, nil)
		outs = append(outs, b.Op(ir.KindAdd, 16, v, p))
	}
	b.Line(30)
	b.Ret(b.ReduceTree(ir.KindAdd, 16, outs))
	cfg := flow.DefaultConfig()
	cfg.Place.Moves = 4000
	res, err := flow.Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTraceCoversEveryOpExactlyOnce(t *testing.T) {
	res := runSmall(t)
	traced := Trace(res)
	if len(traced) != res.Mod.NumOps() {
		t.Fatalf("traced %d ops, module has %d", len(traced), res.Mod.NumOps())
	}
	seen := make(map[int]bool)
	for _, tr := range traced {
		if seen[tr.Op.ID] {
			t.Fatalf("op %d traced twice", tr.Op.ID)
		}
		seen[tr.Op.ID] = true
	}
}

func TestTraceLabelsAreOnDieAndFinite(t *testing.T) {
	res := runSmall(t)
	for _, tr := range Trace(res) {
		if !res.Config.Dev.InBounds(tr.Tile) {
			t.Fatalf("op %v traced to off-die tile %v", tr.Op, tr.Tile)
		}
		if tr.VertPct < 0 || tr.HorizPct < 0 {
			t.Fatalf("negative congestion label")
		}
		want := (tr.VertPct + tr.HorizPct) / 2
		if diff := tr.AvgPct - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("avg label inconsistent")
		}
		if tr.Margin != res.Config.Dev.IsMargin(tr.Tile) {
			t.Fatalf("margin flag inconsistent with tile position")
		}
	}
}

func TestTraceMatchesPlacedCells(t *testing.T) {
	res := runSmall(t)
	for _, tr := range Trace(res) {
		cell := res.Netlist.CellOf[tr.Op]
		if cell == nil {
			t.Fatalf("traced op %v has no cell", tr.Op)
		}
		if got := res.Placement.At(cell); got != tr.Tile {
			t.Fatalf("op %v traced to %v but its cell sits at %v", tr.Op, tr.Tile, got)
		}
	}
}

func TestHotspotsBySource(t *testing.T) {
	res := runSmall(t)
	hs := HotspotsBySource(Trace(res))
	if len(hs) == 0 {
		t.Fatal("no hotspots")
	}
	totalOps := 0
	for i, h := range hs {
		totalOps += h.Ops
		if i > 0 && hs[i-1].MaxAvg < h.MaxAvg {
			t.Fatal("hotspots not sorted by max congestion")
		}
		if h.Loc.IsZero() {
			t.Error("hotspot without source location")
		}
	}
	if totalOps != res.Mod.NumOps() {
		t.Errorf("hotspots cover %d ops, want %d", totalOps, res.Mod.NumOps())
	}
}

func TestTraceOnRealBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark trace in -short mode")
	}
	cfg := flow.DefaultConfig()
	m := bench.FaceDetection(bench.WithoutDirectives())
	res, err := flow.Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	traced := Trace(res)
	if len(traced) != m.NumOps() {
		t.Fatalf("traced %d of %d ops", len(traced), m.NumOps())
	}
	// Some replica ops must exist and be marked for the filtering study.
	replicas := 0
	for _, tr := range traced {
		if tr.Op.IsReplica() {
			replicas++
		}
	}
	_ = replicas // without directives there is no unrolling; just exercise the path
}
