#!/usr/bin/env sh
# Benchmark harness for the distributed build fleet: times one dataset
# build four ways — in-process sequential (`build -workers 1`), and
# coordinator + N worker processes for N in 1, 2, 4 — and derives the
# figures BENCH_PR8.json records:
#
#   coordination_overhead_1w  t_fleet(1 worker) / t_local: what the HTTP
#                             queue, JSON spec round-trip and per-cell
#                             verification cost when distribution buys
#                             nothing.
#   speedup_2w / speedup_4w   t_local / t_fleet(N workers). Only claimed
#                             as parallel speedup when the host has the
#                             CPUs to back it: on fewer CPUs than workers
#                             the processes time-slice one core and the
#                             script refuses the claim (the PR3 precedent
#                             for GOMAXPROCS=1 hosts) while still
#                             recording the measured wall times.
#
# Every fleet artifact is compared byte-for-byte against the sequential
# one — a benchmark run that produced different bytes is a failed run.
#
# The PR3-PR7 figures are carried forward from BENCH_PR7.json so one file
# still summarizes the repo's performance story.
#
# Usage: scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_PR8.json
# Heavy cells (seconds each, place-dominated) so the coordination cost is
# measured against real work, not against a build that finishes in 100ms.
BUILD_ARGS="-modules face_detection -label-runs 4 -moves 20000000"

FLEET_TMP="$(mktemp -d)"
trap 'rm -rf "$FLEET_TMP"' EXIT
HL="$FLEET_TMP/hlscong"
go build -o "$HL" ./cmd/hlscong

now_ms() {
	date +%s%N | sed 's/......$//'
}

echo "== sequential reference build (in-process, -workers 1) =="
t0="$(now_ms)"
# shellcheck disable=SC2086
"$HL" -workers 1 $BUILD_ARGS -out "$FLEET_TMP/ref.art" build > /dev/null
t1="$(now_ms)"
T_LOCAL=$((t1 - t0))
echo "  t_local: ${T_LOCAL}ms"

# fleet_run N OUT: coordinator + N fresh worker processes, wall-clock the
# whole build (coordinator launch through artifact written). Prints the
# elapsed milliseconds.
fleet_run() {
	n="$1"
	art="$2"
	dir="$FLEET_TMP/run$n"
	mkdir -p "$dir"
	start="$(now_ms)"
	# A long lease keeps expiry/steal churn out of the timing: on a
	# time-sliced single CPU a cell can easily outlive the default 30s TTL,
	# and re-running it would measure the recovery machinery, not the queue.
	# shellcheck disable=SC2086
	"$HL" -serve-builds 127.0.0.1:0 -fleet-addr-file "$dir/addr" -fleet-lease 600s \
		$BUILD_ARGS -out "$art" build > /dev/null 2> "$dir/coord.log" &
	cpid=$!
	i=0
	while [ ! -s "$dir/addr" ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "FAIL: coordinator never bound" >&2; return 1; }
		sleep 0.1
	done
	addr="$(cat "$dir/addr")"
	pids=""
	j=0
	while [ "$j" -lt "$n" ]; do
		"$HL" -join "$addr" -fleet-name "w$j" > /dev/null 2>&1 &
		pids="$pids $!"
		j=$((j + 1))
	done
	wait "$cpid" || { echo "FAIL: coordinator failed (see $dir/coord.log)" >&2; return 1; }
	end="$(now_ms)"
	for p in $pids; do
		wait "$p" 2> /dev/null || true
	done
	echo $((end - start))
}

T_FLEET_1=""
T_FLEET_2=""
T_FLEET_4=""
for n in 1 2 4; do
	echo "== fleet build ($n worker(s)) =="
	t="$(fleet_run "$n" "$FLEET_TMP/fleet$n.art")"
	cmp "$FLEET_TMP/ref.art" "$FLEET_TMP/fleet$n.art" || {
		echo "FAIL: $n-worker fleet artifact differs from the sequential build"
		exit 1
	}
	echo "  t_fleet_${n}w: ${t}ms (byte-identical to sequential)"
	case "$n" in
	1) T_FLEET_1="$t" ;;
	2) T_FLEET_2="$t" ;;
	4) T_FLEET_4="$t" ;;
	esac
done

# Pull one numeric field out of a JSON report (first match).
carry() {
	sed -n "s/.*\"$2\": \(-\{0,1\}[0-9.]*\).*/\1/p" "$1" 2> /dev/null | head -1
}

awk -v cpus="$(nproc)" -v strict="${BENCH_STRICT:-0}" \
	-v t_local="$T_LOCAL" -v t1="$T_FLEET_1" -v t2="$T_FLEET_2" -v t4="$T_FLEET_4" \
	-v p3place="$(carry BENCH_PR7.json place_speedup)" \
	-v p3route="$(carry BENCH_PR7.json route_speedup)" \
	-v p3cache="$(carry BENCH_PR7.json warm_cache_speedup)" \
	-v p4gbrt="$(carry BENCH_PR7.json gbrt_fit_speedup)" \
	-v p4grid="$(carry BENCH_PR7.json gbrt_grid_search_speedup)" \
	-v p5noop="$(carry BENCH_PR7.json noop_overhead_check)" \
	-v p5obs="$(carry BENCH_PR7.json enabled_overhead)" \
	-v p6store="$(carry BENCH_PR7.json store_overhead)" \
	-v p6resume="$(carry BENCH_PR7.json resume_speedup)" \
	-v p7serve="$(carry BENCH_PR7.json serve_preds_per_sec_single_core)" \
	-v p7http="$(carry BENCH_PR7.json http_preds_per_sec_single_core)" \
	-v p7p99="$(carry BENCH_PR7.json serve_p99_us_bound)" '
	function num(v) { return (v != "" ? v : "null") }
	BEGIN {
		overhead = t1 / t_local
		speedup2 = t_local / t2
		speedup4 = t_local / t4
		refused = (cpus < 2) ? "true" : "false"

		printf "{\n"
		printf "  \"host\": {\"cpus\": %d},\n", cpus

		printf "  \"carried_forward\": {"
		printf "\"place_speedup\": %s, ", num(p3place)
		printf "\"route_speedup\": %s, ", num(p3route)
		printf "\"warm_cache_speedup\": %s, ", num(p3cache)
		printf "\"gbrt_fit_speedup\": %s, ", num(p4gbrt)
		printf "\"gbrt_grid_search_speedup\": %s, ", num(p4grid)
		printf "\"noop_overhead_check\": %s, ", num(p5noop)
		printf "\"enabled_overhead\": %s, ", num(p5obs)
		printf "\"store_overhead\": %s, ", num(p6store)
		printf "\"resume_speedup\": %s, ", num(p6resume)
		printf "\"serve_preds_per_sec_single_core\": %s, ", num(p7serve)
		printf "\"http_preds_per_sec_single_core\": %s, ", num(p7http)
		printf "\"serve_p99_us_bound\": %s},\n", num(p7p99)

		printf "  \"fleet\": {\n"
		printf "    \"t_local_ms\": %d,\n", t_local
		printf "    \"t_fleet_1w_ms\": %d,\n", t1
		printf "    \"t_fleet_2w_ms\": %d,\n", t2
		printf "    \"t_fleet_4w_ms\": %d,\n", t4
		printf "    \"coordination_overhead_1w\": %.3f,\n", overhead
		printf "    \"wall_ratio_2w\": %.3f,\n", speedup2
		printf "    \"wall_ratio_4w\": %.3f,\n", speedup4
		printf "    \"byte_identical_all_runs\": true\n"
		printf "  },\n"

		overhead_ok = (overhead <= 1.15) ? "true" : "false"
		printf "  \"meets_overhead_1w_within_1_15x\": %s,\n", overhead_ok

		# Parallel-speedup claims need parallel hardware. On a host with
		# fewer CPUs than workers the N processes time-slice one core, so
		# the wall ratios above measure scheduling fairness, not scaling —
		# claiming >=1.7x/>=3x from them would be dishonest (see the PR3
		# GOMAXPROCS=1 precedent). Record them, claim nothing.
		printf "  \"parallel_speedup_claims_refused\": %s,\n", refused
		if (refused == "true") {
			printf "  \"refusal_reason\": \"host has %d CPU(s); multi-worker wall ratios on one core measure time-slicing, not parallel scaling\",\n", cpus
			printf "  \"meets_speedup_2w_1_7x\": null,\n"
			printf "  \"meets_speedup_4w_3x\": null\n"
		} else {
			s2ok = (cpus >= 2 && speedup2 >= 1.7) ? "true" : "false"
			s4ok = (cpus >= 4 && speedup4 >= 3.0) ? "true" : "false"
			printf "  \"meets_speedup_2w_1_7x\": %s,\n", s2ok
			printf "  \"meets_speedup_4w_3x\": %s\n", s4ok
		}
		printf "}\n"

		if (overhead_ok != "true") {
			printf "WARNING: 1-worker fleet overhead %.2fx exceeds the 1.15x budget\n",
				overhead > "/dev/stderr"
			if (strict != 0) exit 1
		}
	}
' > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
