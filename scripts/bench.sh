#!/usr/bin/env sh
# Benchmark harness for the flow-kernel fast path: runs the kernel
# microbenchmarks (optimized vs frozen-reference placer and router), the
# end-to-end dataset build at each worker count, and the warm-flow-cache
# rebuild, and records the timings in BENCH_PR3.json.
#
# Two kinds of speedup appear in the output and must not be conflated:
#   - kernel/cache speedups (place_speedup, route_speedup,
#     warm_cache_speedup, build_speedup_vs_pr2) are algorithmic and real on
#     any host;
#   - parallel speedup (build_speedup_workers4) needs real cores. On a
#     GOMAXPROCS=1 host the workers=4 build collapses to sequential
#     throughput, so the harness refuses to report a number there and
#     records null with an explanatory note instead.
#
# Usage: scripts/bench.sh [benchtime]   (default 1x; try 3x on fast hosts)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1x}"
OUT=BENCH_PR3.json

# Each benchmark repeats -count=3 times and the JSON records the fastest
# repetition: on a shared host the minimum is the least-interference
# estimate, and all comparisons below are min-vs-min of the same workload.
COUNT="${BENCH_COUNT:-3}"

echo "== go test -bench (benchtime=$BENCHTIME, count=$COUNT, keeping min) =="
go test -run '^$' -bench 'BenchmarkPlace$|BenchmarkMoveDelta' -benchmem -benchtime="$BENCHTIME" -count="$COUNT" ./internal/place/ |
	tee /tmp/bench_place.txt
go test -run '^$' -bench 'BenchmarkRoute' -benchmem -benchtime="$BENCHTIME" -count="$COUNT" ./internal/route/ |
	tee /tmp/bench_route.txt
go test -run '^$' -bench 'BenchmarkBuildDataset' -benchtime="$BENCHTIME" -count="$COUNT" . |
	tee /tmp/bench_build.txt

awk -v cpus="$(nproc)" -v maxprocs="${GOMAXPROCS:-$(nproc)}" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		if (!(name in ns)) {
			order[n++] = name
			ns[name] = $3 + 0
		} else if ($3 + 0 < ns[name])
			ns[name] = $3 + 0
	}
	END {
		printf "{\n"
		printf "  \"host\": {\"cpus\": %d, \"gomaxprocs\": %s},\n", cpus, maxprocs
		printf "  \"baseline\": {\"build_workers1_ns_pr2\": %s},\n", pr2
		printf "  \"benchmarks\": {\n"
		for (i = 0; i < n; i++) {
			name = order[i]
			printf "    \"%s\": {\"ns_per_op\": %s}%s\n", name, ns[name], (i < n-1 ? "," : "")
		}
		printf "  },\n"

		# Algorithmic speedups: optimized kernel vs the frozen reference
		# kernels (bit-identical outputs, see the equivalence tests), the
		# warm-flow-cache rebuild, and this build vs the PR2 baseline.
		ratio("place_speedup", ns["BenchmarkPlace/reference"], ns["BenchmarkPlace/incremental"])
		ratio("route_speedup", ns["BenchmarkRoute/reference"], ns["BenchmarkRoute/fast"])
		ratio("warm_cache_speedup", ns["BenchmarkBuildDataset/workers=1"], ns["BenchmarkBuildDatasetWarmCache"])
		ratio("build_speedup_vs_pr2", pr2, ns["BenchmarkBuildDataset/workers=1"])

		# Parallel speedup is only meaningful with real cores behind the
		# workers: refuse to claim one on a single-proc host.
		seq = ns["BenchmarkBuildDataset/workers=1"]
		par = ns["BenchmarkBuildDataset/workers=4"]
		if (maxprocs < 2) {
			printf "  \"build_speedup_workers4\": null,\n"
			printf "  \"build_speedup_workers4_note\": \"not reported: GOMAXPROCS=%d, parallel workers cannot speed up on a single-proc host\"\n", maxprocs
		} else if (seq > 0 && par > 0) {
			printf "  \"build_speedup_workers4\": %.3f\n", seq / par
		} else {
			printf "  \"build_speedup_workers4\": null\n"
		}
		printf "}\n"
	}
	function ratio(label, num, den) {
		if (num > 0 && den > 0)
			printf "  \"%s\": %.3f,\n", label, num / den
		else
			printf "  \"%s\": null,\n", label
	}
' pr2="$(sed -n 's/.*"BenchmarkBuildDataset\/workers=1": {"ns_per_op": \([0-9]*\)}.*/\1/p' BENCH_PR2.json 2>/dev/null | head -1)" \
	/tmp/bench_place.txt /tmp/bench_route.txt /tmp/bench_build.txt > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
