#!/usr/bin/env sh
# Benchmark harness for the persistence layer: measures the end-to-end
# training-dataset build three ways and derives the two figures
# BENCH_PR6.json records:
#
#   store_overhead  — cold-disk checkpointed build (every flow result and
#                     per-module block encoded + fsynced + renamed into a
#                     fresh store) vs the plain in-memory build. This is
#                     the price of durability on the first run of a sweep.
#   resume_speedup  — cold-disk build vs warm-disk rebuild (same store
#                     directory, fresh process state: every module restores
#                     from its checkpoint block, zero flow runs). This is
#                     what a rerun after kill -9 actually costs.
#
# The crash-recovery *correctness* contract (byte-identical artifact after
# a real SIGKILL) is enforced by scripts/check.sh; this script only prices
# it. The PR3/PR4/PR5 fast-path and observability figures are carried
# forward so one file still summarizes the repo's performance story.
#
# Usage: scripts/bench.sh [benchtime]   (default 3x; builds are seconds each)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
OUT=BENCH_PR6.json
COUNT="${BENCH_COUNT:-3}"

# One process, interleaved -count repetitions of all three paths; the awk
# below keeps the minimum per benchmark (least-interference estimate).
echo "== go test -bench (benchtime=$BENCHTIME, count=$COUNT, keeping min) =="
go test -run '^$' -bench '^BenchmarkBuildDataset$/^workers=1$' \
	-benchtime="$BENCHTIME" -count="$COUNT" . |
	tee /tmp/bench_store.txt
go test -run '^$' -bench '^BenchmarkBuildDataset(ColdStore|WarmStore)$' \
	-benchtime="$BENCHTIME" -count="$COUNT" . |
	tee -a /tmp/bench_store.txt

# Carry PR3/PR4/PR5 summary figures forward verbatim; null when missing.
carry() {
	sed -n "s/.*\"$2\": \([0-9.]*\).*/\1/p" "$1" 2>/dev/null | head -1
}

awk -v cpus="$(nproc)" -v maxprocs="${GOMAXPROCS:-$(nproc)}" \
	-v strict="${BENCH_STRICT:-0}" \
	-v p3place="$(carry BENCH_PR5.json place_speedup)" \
	-v p3route="$(carry BENCH_PR5.json route_speedup)" \
	-v p3cache="$(carry BENCH_PR5.json warm_cache_speedup)" \
	-v p4gbrt="$(carry BENCH_PR5.json gbrt_fit_speedup)" \
	-v p4grid="$(carry BENCH_PR5.json gbrt_grid_search_speedup)" \
	-v p5noop="$(carry BENCH_PR5.json noop_overhead_check)" \
	-v p5obs="$(carry BENCH_PR5.json enabled_overhead)" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		if (!(name in ns) || $3 + 0 < ns[name]) {
			if (!(name in ns))
				order[n++] = name
			ns[name] = $3 + 0
		}
	}
	END {
		printf "{\n"
		printf "  \"host\": {\"cpus\": %d, \"gomaxprocs\": %s},\n", cpus, maxprocs

		printf "  \"carried_forward\": {"
		printf "\"place_speedup\": %s, ", (p3place != "" ? p3place : "null")
		printf "\"route_speedup\": %s, ", (p3route != "" ? p3route : "null")
		printf "\"warm_cache_speedup\": %s, ", (p3cache != "" ? p3cache : "null")
		printf "\"gbrt_fit_speedup\": %s, ", (p4gbrt != "" ? p4gbrt : "null")
		printf "\"gbrt_grid_search_speedup\": %s, ", (p4grid != "" ? p4grid : "null")
		printf "\"noop_overhead_check\": %s, ", (p5noop != "" ? p5noop : "null")
		printf "\"enabled_overhead\": %s},\n", (p5obs != "" ? p5obs : "null")

		printf "  \"benchmarks\": {\n"
		for (i = 0; i < n; i++) {
			name = order[i]
			printf "    \"%s\": {\"ns_per_op\": %s}%s\n",
				name, ns[name], (i < n-1 ? "," : "")
		}
		printf "  },\n"

		base = ns["BenchmarkBuildDataset/workers=1"]
		cold = ns["BenchmarkBuildDatasetColdStore"]
		warm = ns["BenchmarkBuildDatasetWarmStore"]

		if (base > 0 && cold > 0)
			printf "  \"store_overhead\": %.4f,\n", cold / base
		else
			printf "  \"store_overhead\": null,\n"
		speedup = (cold > 0 && warm > 0) ? cold / warm : 0
		if (speedup > 0)
			printf "  \"resume_speedup\": %.4f,\n", speedup
		else
			printf "  \"resume_speedup\": null,\n"

		printf "  \"resume_faster_than_cold\": %s\n", (speedup > 1) ? "true" : "false"
		printf "}\n"

		if (speedup <= 1) {
			printf "WARNING: warm-store resume (%.0f ns) not faster than cold build (%.0f ns)\n", warm, cold > "/dev/stderr"
			if (strict != 0)
				exit 1
		}
	}
' /tmp/bench_store.txt > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
