#!/usr/bin/env sh
# Benchmark harness for the observability PR: measures what the flight
# recorder costs the serving hot path, behind BENCH_PR10.json.
#
# The recorder samples the metrics registry from a background goroutine;
# the request path writes the same atomics whether or not anyone reads
# them, so serving throughput with the recorder on (100ms sampling, an
# armed-but-quiet breach watcher) must stay within 2% of the recorder-off
# figure. Both configurations are measured closed-loop, best of three
# runs each, on the same host in the same process configuration — the
# A/B is fair at any core count because both sides share it. Before any
# timing, congload -probe proves the two configurations byte-identical:
# observation that changed a prediction would be a failed run, not an
# overhead.
#
#   recorder_overhead        preds/s(recorder on) / preds/s(recorder off),
#                            best-of-3 each side. The tentpole claim is
#                            >= 0.98 (within 2%).
#
# The PR3-PR9 figures are carried forward from BENCH_PR9.json so one file
# still summarizes the repo's performance story.
#
# Usage: scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_PR10.json
CPUS="$(nproc)"
TMP="$(mktemp -d)"
SRV_PID=""
trap '[ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2> /dev/null; rm -rf "$TMP"' EXIT

go build -o "$TMP/congserve" ./cmd/congserve
go build -o "$TMP/congload" ./cmd/congload

echo "== training quick artifact =="
"$TMP/congserve" -train-quick -model "$TMP/model.json" -kind gbrt > /dev/null

# start_server SHARDS [extra flags...]: launches congserve in the
# background (output to a log so it never holds this script's pipes),
# waits for the bound address (written atomically via temp+rename), and
# sets SRV_PID and ADDR. Runs in this shell, not a substitution, so
# SRV_PID survives for stop_server.
start_server() {
	rm -f "$TMP/addr.txt"
	shards="$1"
	shift
	"$TMP/congserve" -model "$TMP/model.json" -addr 127.0.0.1:0 \
		-addr-file "$TMP/addr.txt" -log-level warn -shards "$shards" "$@" \
		> "$TMP/server.log" 2>&1 &
	SRV_PID=$!
	i=0
	while [ ! -s "$TMP/addr.txt" ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "FAIL: congserve never bound" >&2; return 1; }
		sleep 0.1
	done
	ADDR="$(cat "$TMP/addr.txt")"
}

stop_server() {
	kill -TERM "$SRV_PID"
	wait "$SRV_PID" || { echo "FAIL: congserve did not drain cleanly" >&2; return 1; }
	SRV_PID=""
}

# Pull one numeric field out of a JSON report (first match).
carry() {
	sed -n "s/.*\"$2\": \(-\{0,1\}[0-9.]*\).*/\1/p" "$1" 2> /dev/null | head -1
}

# Recorder-off and recorder-on server configurations. The "on" side is
# the full PR 10 stack: 100ms sampling (10x the production default, to
# give the sampler every chance to show up in the numbers) and a breach
# watcher armed at an unreachable threshold, so the rule evaluation runs
# every tick but never captures.
OFF_ARGS="-history-interval 0"
ON_ARGS="-history-interval 100ms -history-cap 300 -breach-dir $TMP/breach -breach-p99-us 1000000000"

echo "== prediction byte-identity (recorder off vs on) =="
# shellcheck disable=SC2086
start_server 2 $OFF_ARGS
"$TMP/congload" -addr "$ADDR" -probe "$TMP/probe_off.bin"
stop_server
# shellcheck disable=SC2086
start_server 2 $ON_ARGS
"$TMP/congload" -addr "$ADDR" -probe "$TMP/probe_on.bin"
stop_server
cmp "$TMP/probe_off.bin" "$TMP/probe_on.bin" || {
	echo "FAIL: predictions differ with the recorder attached"
	exit 1
}
echo "  byte-identical"

# Closed-loop measurement: enough workers to keep every lane fed, long
# enough to dominate warmup jitter.
LOAD_ARGS="-duration 3s -warmup 300ms -concurrency 8 -rows 32"

# measure LABEL [server flags...]: best-of-3 closed-loop preds/s into
# BEST (awk handles the float compare; sh arithmetic is integer-only).
measure() {
	label="$1"
	shift
	BEST=0
	for run in 1 2 3; do
		start_server 2 "$@"
		# shellcheck disable=SC2086
		"$TMP/congload" -addr "$ADDR" $LOAD_ARGS > "$TMP/load.json"
		stop_server
		pps="$(carry "$TMP/load.json" preds_per_sec)"
		echo "  $label run $run: $pps preds/s"
		BEST="$(awk -v a="$BEST" -v b="$pps" 'BEGIN { print (b + 0 > a + 0) ? b : a }')"
	done
	echo "  $label best: $BEST"
}

echo "== closed-loop, recorder off =="
# shellcheck disable=SC2086
measure "off" $OFF_ARGS
OFF_PPS="$BEST"

echo "== closed-loop, recorder on (100ms sampling, armed watcher) =="
# shellcheck disable=SC2086
measure "on" $ON_ARGS
ON_PPS="$BEST"

# The "on" side must actually have been observing, or the ratio is
# measuring nothing: the last load report carries the server-side delta
# congload reads from /debug/metrics, and the recorder must have seen
# the traffic.
grep -q '"server"' "$TMP/load.json" || {
	echo "FAIL: recorder-on run has no server-side delta in the load report"
	exit 1
}
captures="$(ls -d "$TMP"/breach/breach-* 2> /dev/null | wc -l)"
[ "$captures" -eq 0 ] || {
	echo "FAIL: the unreachable breach threshold captured $captures time(s)"
	exit 1
}

awk -v cpus="$CPUS" -v strict="${BENCH_STRICT:-0}" \
	-v offp="$OFF_PPS" -v onp="$ON_PPS" \
	-v p3place="$(carry BENCH_PR9.json place_speedup)" \
	-v p3route="$(carry BENCH_PR9.json route_speedup)" \
	-v p3cache="$(carry BENCH_PR9.json warm_cache_speedup)" \
	-v p4gbrt="$(carry BENCH_PR9.json gbrt_fit_speedup)" \
	-v p4grid="$(carry BENCH_PR9.json gbrt_grid_search_speedup)" \
	-v p5noop="$(carry BENCH_PR9.json noop_overhead_check)" \
	-v p5obs="$(carry BENCH_PR9.json enabled_overhead)" \
	-v p6store="$(carry BENCH_PR9.json store_overhead)" \
	-v p6resume="$(carry BENCH_PR9.json resume_speedup)" \
	-v p7serve="$(carry BENCH_PR9.json serve_preds_per_sec_single_core)" \
	-v p7http="$(carry BENCH_PR9.json http_preds_per_sec_single_core)" \
	-v p7p99="$(carry BENCH_PR9.json serve_p99_us_bound)" \
	-v p8over="$(carry BENCH_PR9.json fleet_coordination_overhead_1w)" \
	-v p8w2="$(carry BENCH_PR9.json fleet_wall_ratio_2w)" \
	-v p8w4="$(carry BENCH_PR9.json fleet_wall_ratio_4w)" \
	-v p9c1="$(carry BENCH_PR9.json serve_preds_per_sec_1c)" \
	-v p9c2="$(carry BENCH_PR9.json serve_preds_per_sec_2c)" \
	-v p9c4="$(carry BENCH_PR9.json serve_preds_per_sec_4c)" \
	-v p9shard="$(carry BENCH_PR9.json 'sharded_vs_single_shard_at_[0-9]c')" \
	-v p9p99="$(carry BENCH_PR9.json p99_us)" \
	-v p9drop="$(carry BENCH_PR9.json dropped_ticks)" '
	function num(v) { return (v != "" ? v : "null") }
	BEGIN {
		printf "{\n"
		printf "  \"host\": {\"cpus\": %d},\n", cpus

		printf "  \"carried_forward\": {"
		printf "\"place_speedup\": %s, ", num(p3place)
		printf "\"route_speedup\": %s, ", num(p3route)
		printf "\"warm_cache_speedup\": %s, ", num(p3cache)
		printf "\"gbrt_fit_speedup\": %s, ", num(p4gbrt)
		printf "\"gbrt_grid_search_speedup\": %s, ", num(p4grid)
		printf "\"noop_overhead_check\": %s, ", num(p5noop)
		printf "\"enabled_overhead\": %s, ", num(p5obs)
		printf "\"store_overhead\": %s, ", num(p6store)
		printf "\"resume_speedup\": %s, ", num(p6resume)
		printf "\"serve_preds_per_sec_single_core\": %s, ", num(p7serve)
		printf "\"http_preds_per_sec_single_core\": %s, ", num(p7http)
		printf "\"serve_p99_us_bound\": %s, ", num(p7p99)
		printf "\"fleet_coordination_overhead_1w\": %s, ", num(p8over)
		printf "\"fleet_wall_ratio_2w\": %s, ", num(p8w2)
		printf "\"fleet_wall_ratio_4w\": %s, ", num(p8w4)
		printf "\"serve_preds_per_sec_1c\": %s, ", num(p9c1)
		printf "\"serve_preds_per_sec_2c\": %s, ", num(p9c2)
		printf "\"serve_preds_per_sec_4c\": %s, ", num(p9c4)
		printf "\"sharded_vs_single_shard\": %s, ", num(p9shard)
		printf "\"open_loop_p99_us\": %s, ", num(p9p99)
		printf "\"open_loop_dropped_ticks\": %s},\n", num(p9drop)

		printf "  \"flight_recorder\": {\n"
		printf "    \"predictions_byte_identical_with_recorder\": true,\n"
		printf "    \"sampling_interval_ms\": 100,\n"
		printf "    \"preds_per_sec_recorder_off\": %s,\n", num(offp)
		printf "    \"preds_per_sec_recorder_on\": %s,\n", num(onp)
		ratio = 0
		if (offp != "" && onp != "" && offp + 0 > 0) {
			ratio = onp / offp
			printf "    \"recorder_overhead\": %.4f,\n", ratio
			ok = (ratio >= 0.98) ? "true" : "false"
		} else {
			printf "    \"recorder_overhead\": null,\n"
			ok = "false"
		}
		printf "    \"recorder_within_2pct\": %s\n", ok
		printf "  }\n"
		printf "}\n"
		if (ok != "true") {
			printf "WARNING: recorder-on throughput %.2f%% of recorder-off, below the 98%% target\n", \
				ratio * 100 > "/dev/stderr"
			if (strict != 0) exit 1
		}
	}
' > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
