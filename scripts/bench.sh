#!/usr/bin/env sh
# Benchmark harness for the serving layer: measures the /predict hot path
# two ways and derives the figures BENCH_PR7.json records.
#
#   In-process (go test -bench, GOMAXPROCS=1): ServeBytes — the exact path
#   behind POST /predict minus net/http — in both wire formats, plus the
#   coalescing pipeline under concurrent closed-loop callers and the bare
#   PredictBatchInto floor. Each reports preds/s and allocs/op; the
#   binary-format figures are the single-core serving claim.
#
#   End-to-end (congserve + congload over real HTTP on localhost): a
#   closed-loop throughput run (large requests) and a latency run
#   (single-row requests). congload reports client-side p50/p99 and the
#   server-side serve.latency_us p99 bucket bound, which is the number the
#   "p99 stays within ~2x the coalescing window" criterion is judged on —
#   client-side figures include HTTP and loopback cost.
#
# The PR3-PR6 figures are carried forward from BENCH_PR6.json so one file
# still summarizes the repo's performance story.
#
# Usage: scripts/bench.sh [benchtime]   (default 1s)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1s}"
OUT=BENCH_PR7.json
COUNT="${BENCH_COUNT:-3}"
WINDOW_US=200

echo "== serve benchmarks (GOMAXPROCS=1, benchtime=$BENCHTIME, count=$COUNT, keeping best) =="
GOMAXPROCS=1 go test -run '^$' \
	-bench 'BenchmarkServePredict|BenchmarkServeCoalesced|BenchmarkPredictBatchDirect' \
	-benchmem -benchtime="$BENCHTIME" -count="$COUNT" ./internal/serve/ |
	tee /tmp/bench_serve.txt

echo "== closed-loop HTTP load (congserve GOMAXPROCS=1 + congload) =="
SERVE_TMP="$(mktemp -d)"
SERVE_PID=""
trap 'rm -rf "$SERVE_TMP"; [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2> /dev/null || true' EXIT
go build -o "$SERVE_TMP/congserve" ./cmd/congserve
go build -o "$SERVE_TMP/congload" ./cmd/congload
"$SERVE_TMP/congserve" -train-quick -model "$SERVE_TMP/model.json" -kind gbrt > /dev/null
GOMAXPROCS=1 "$SERVE_TMP/congserve" -model "$SERVE_TMP/model.json" \
	-addr 127.0.0.1:0 -addr-file "$SERVE_TMP/addr.txt" -log-level warn &
SERVE_PID=$!
i=0
while [ ! -s "$SERVE_TMP/addr.txt" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && { echo "FAIL: congserve never wrote its address"; exit 1; }
	sleep 0.1
done
ADDR="$(cat "$SERVE_TMP/addr.txt")"
# Latency first: the serve.latency_us histogram accumulates over the
# server's lifetime, so the single-row run must read its server-side p99
# bound before the bulk run floods the series with millisecond batches.
"$SERVE_TMP/congload" -addr "$ADDR" -duration 3s -concurrency 4 -rows 1 \
	-out "$SERVE_TMP/lat.json" > /dev/null
"$SERVE_TMP/congload" -addr "$ADDR" -duration 3s -concurrency 6 -rows 256 \
	-out "$SERVE_TMP/tput.json" > /dev/null
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
SERVE_PID=""

# Pull one numeric field out of a JSON report (first match).
carry() {
	sed -n "s/.*\"$2\": \(-\{0,1\}[0-9.]*\).*/\1/p" "$1" 2> /dev/null | head -1
}

awk -v cpus="$(nproc)" -v window_us="$WINDOW_US" \
	-v strict="${BENCH_STRICT:-0}" \
	-v http_pps="$(carry "$SERVE_TMP/tput.json" preds_per_sec)" \
	-v http_p99="$(carry "$SERVE_TMP/tput.json" p99_us)" \
	-v lat_p50="$(carry "$SERVE_TMP/lat.json" p50_us)" \
	-v lat_p99="$(carry "$SERVE_TMP/lat.json" p99_us)" \
	-v serve_p99="$(carry "$SERVE_TMP/lat.json" server_p99_us_bound)" \
	-v p3place="$(carry BENCH_PR6.json place_speedup)" \
	-v p3route="$(carry BENCH_PR6.json route_speedup)" \
	-v p3cache="$(carry BENCH_PR6.json warm_cache_speedup)" \
	-v p4gbrt="$(carry BENCH_PR6.json gbrt_fit_speedup)" \
	-v p4grid="$(carry BENCH_PR6.json gbrt_grid_search_speedup)" \
	-v p5noop="$(carry BENCH_PR6.json noop_overhead_check)" \
	-v p5obs="$(carry BENCH_PR6.json enabled_overhead)" \
	-v p6store="$(carry BENCH_PR6.json store_overhead)" \
	-v p6resume="$(carry BENCH_PR6.json resume_speedup)" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		# Fields come in value-unit pairs after the iteration count; keep
		# the best (max preds/s, min allocs/op) across -count repetitions.
		pps = -1; apo = -1
		for (i = 3; i < NF; i++) {
			if ($(i + 1) == "preds/s") pps = $i + 0
			if ($(i + 1) == "allocs/op") apo = $i + 0
		}
		if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
		if (pps >= 0 && pps > best_pps[name]) best_pps[name] = pps
		if (apo >= 0 && (!(name in best_apo) || apo < best_apo[name]))
			best_apo[name] = apo
	}
	END {
		printf "{\n"
		printf "  \"host\": {\"cpus\": %d, \"serve_gomaxprocs\": 1},\n", cpus

		printf "  \"carried_forward\": {"
		printf "\"place_speedup\": %s, ", (p3place != "" ? p3place : "null")
		printf "\"route_speedup\": %s, ", (p3route != "" ? p3route : "null")
		printf "\"warm_cache_speedup\": %s, ", (p3cache != "" ? p3cache : "null")
		printf "\"gbrt_fit_speedup\": %s, ", (p4gbrt != "" ? p4gbrt : "null")
		printf "\"gbrt_grid_search_speedup\": %s, ", (p4grid != "" ? p4grid : "null")
		printf "\"noop_overhead_check\": %s, ", (p5noop != "" ? p5noop : "null")
		printf "\"enabled_overhead\": %s, ", (p5obs != "" ? p5obs : "null")
		printf "\"store_overhead\": %s, ", (p6store != "" ? p6store : "null")
		printf "\"resume_speedup\": %s},\n", (p6resume != "" ? p6resume : "null")

		printf "  \"benchmarks\": {\n"
		for (i = 0; i < n; i++) {
			name = order[i]
			printf "    \"%s\": {\"preds_per_sec\": %s, \"allocs_per_op\": %s}%s\n",
				name,
				(name in best_pps ? best_pps[name] : "null"),
				(name in best_apo ? best_apo[name] : "null"),
				(i < n - 1 ? "," : "")
		}
		printf "  },\n"

		serve_pps = best_pps["BenchmarkServePredictBinary256"] + 0
		printf "  \"serve_preds_per_sec_single_core\": %s,\n", (serve_pps > 0 ? serve_pps : "null")
		printf "  \"http_preds_per_sec_single_core\": %s,\n", (http_pps != "" ? http_pps : "null")
		printf "  \"http_p99_us_bulk\": %s,\n", (http_p99 != "" ? http_p99 : "null")
		printf "  \"http_single_row_p50_us\": %s,\n", (lat_p50 != "" ? lat_p50 : "null")
		printf "  \"http_single_row_p99_us\": %s,\n", (lat_p99 != "" ? lat_p99 : "null")
		printf "  \"serve_p99_us_bound\": %s,\n", (serve_p99 != "" ? serve_p99 : "null")
		printf "  \"window_us\": %d,\n", window_us

		target_met = (serve_pps >= 100000 && http_pps + 0 >= 100000) ? "true" : "false"
		p99_ok = (serve_p99 != "" && serve_p99 + 0 > 0 && serve_p99 + 0 <= 2 * window_us) ? "true" : "false"
		printf "  \"meets_100k_preds_per_sec\": %s,\n", target_met
		printf "  \"serve_p99_within_2x_window\": %s\n", p99_ok
		printf "}\n"

		if (target_met != "true") {
			printf "WARNING: single-core serving below 100k preds/s (bench %s, http %s)\n",
				serve_pps, http_pps > "/dev/stderr"
			if (strict != 0) exit 1
		}
		if (p99_ok != "true") {
			printf "WARNING: serve-side p99 bound %s us exceeds 2x the %d us window\n",
				serve_p99, window_us > "/dev/stderr"
			if (strict != 0) exit 1
		}
	}
' /tmp/bench_serve.txt > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
