#!/usr/bin/env sh
# Benchmark harness for the ML fast path: runs the old-vs-new training and
# batch-prediction microbenchmarks (frozen reference implementations vs the
# flat-matrix fast path, for GBRT and the ANN) plus the shared-binning CV
# grid search, and records the timings in BENCH_PR4.json.
#
# Every speedup in the output is algorithmic, not parallel: each pair runs
# the same workload single-threaded, and the fast-path outputs are proven
# byte-identical to the references by the equivalence tests that
# scripts/check.sh runs. The PR3 flow-kernel numbers are carried forward
# from BENCH_PR3.json (they are unaffected by this PR) so one file still
# summarizes the whole fast path.
#
# Usage: scripts/bench.sh [benchtime]   (default 10x; try 30x on fast hosts)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-10x}"
OUT=BENCH_PR4.json

# Each benchmark repeats -count=3 times and the JSON records the fastest
# repetition: on a shared host the minimum is the least-interference
# estimate, and all comparisons below are min-vs-min of the same workload.
COUNT="${BENCH_COUNT:-3}"

echo "== go test -bench (benchtime=$BENCHTIME, count=$COUNT, keeping min) =="
go test -run '^$' \
	-bench '^(BenchmarkFitRef|BenchmarkFit|BenchmarkPredictBatchRef|BenchmarkPredictBatchInto|BenchmarkGridSearchCVRef|BenchmarkGridSearchCV)$' \
	-benchmem -benchtime="$BENCHTIME" -count="$COUNT" ./internal/ml/gbrt/ |
	tee /tmp/bench_gbrt.txt
go test -run '^$' \
	-bench '^(BenchmarkFitRef|BenchmarkFit|BenchmarkPredictBatchRef|BenchmarkPredictBatchInto)$' \
	-benchmem -benchtime="$BENCHTIME" -count="$COUNT" ./internal/ml/ann/ |
	tee /tmp/bench_ann.txt

# Carry the PR3 flow-kernel results forward verbatim; null when the file
# or a field is missing rather than inventing a number.
pr3() {
	sed -n "s/.*\"$1\": \([0-9.]*\).*/\1/p" BENCH_PR3.json 2>/dev/null | head -1
}
pr3build() {
	sed -n 's/.*"BenchmarkBuildDataset\/workers=1": {"ns_per_op": \([0-9]*\)}.*/\1/p' \
		BENCH_PR3.json 2>/dev/null | head -1
}

awk -v cpus="$(nproc)" -v maxprocs="${GOMAXPROCS:-$(nproc)}" \
	-v p3place="$(pr3 place_speedup)" -v p3route="$(pr3 route_speedup)" \
	-v p3cache="$(pr3 warm_cache_speedup)" -v p3build="$(pr3build)" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		name = (FILENAME ~ /ann/ ? "ann/" : "gbrt/") name
		if (!(name in ns) || $3 + 0 < ns[name]) {
			if (!(name in ns))
				order[n++] = name
			ns[name] = $3 + 0
			al[name] = $7 + 0
		}
	}
	END {
		printf "{\n"
		printf "  \"host\": {\"cpus\": %d, \"gomaxprocs\": %s},\n", cpus, maxprocs

		# PR3 flow-kernel baseline, carried forward (see header comment).
		printf "  \"baseline_pr3\": {"
		printf "\"place_speedup\": %s, ", (p3place != "" ? p3place : "null")
		printf "\"route_speedup\": %s, ", (p3route != "" ? p3route : "null")
		printf "\"warm_cache_speedup\": %s, ", (p3cache != "" ? p3cache : "null")
		printf "\"build_workers1_ns\": %s},\n", (p3build != "" ? p3build : "null")

		printf "  \"benchmarks\": {\n"
		for (i = 0; i < n; i++) {
			name = order[i]
			printf "    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}%s\n",
				name, ns[name], al[name], (i < n-1 ? "," : "")
		}
		printf "  },\n"

		# Old-vs-new: frozen reference vs shipped fast path, same workload,
		# bit-identical outputs (see the equivalence tests).
		ratio("gbrt_fit_speedup", ns["gbrt/BenchmarkFitRef"], ns["gbrt/BenchmarkFit"])
		ratio("gbrt_predict_speedup", ns["gbrt/BenchmarkPredictBatchRef"], ns["gbrt/BenchmarkPredictBatchInto"])
		ratio("gbrt_grid_search_speedup", ns["gbrt/BenchmarkGridSearchCVRef"], ns["gbrt/BenchmarkGridSearchCV"])
		ratio("gbrt_grid_search_allocs_ratio", al["gbrt/BenchmarkGridSearchCVRef"], al["gbrt/BenchmarkGridSearchCV"])
		ratio("ann_fit_speedup", ns["ann/BenchmarkFitRef"], ns["ann/BenchmarkFit"])
		rlast("ann_predict_speedup", ns["ann/BenchmarkPredictBatchRef"], ns["ann/BenchmarkPredictBatchInto"])
		printf "}\n"
	}
	function ratio(label, num, den) {
		if (num > 0 && den > 0)
			printf "  \"%s\": %.3f,\n", label, num / den
		else
			printf "  \"%s\": null,\n", label
	}
	function rlast(label, num, den) {
		if (num > 0 && den > 0)
			printf "  \"%s\": %.3f\n", label, num / den
		else
			printf "  \"%s\": null\n", label
	}
' /tmp/bench_gbrt.txt /tmp/bench_ann.txt > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
