#!/usr/bin/env sh
# Benchmark harness for the observability layer: measures the end-to-end
# dataset build with no observer (the default, nil fast path), with a live
# observer (tracer + registry attached), and derives the two overhead
# figures BENCH_PR5.json records:
#
#   noop_overhead_check  — observed-vs-disabled is not this; it is the
#                          disabled path itself, run twice in one process
#                          (A/A), so the 2% gate below compares like with
#                          like on the same host instead of against a
#                          number measured on different silicon.
#   enabled_overhead     — live tracer + metrics vs disabled, same worker
#                          count. This one is allowed to cost: it is the
#                          price of a full trace, and stays small because
#                          spans land at stage granularity.
#
# The disabled-path contract (the tentpole's "~zero cost when off") is
# enforced two ways: TestDisabledSpanZeroAlloc pins zero allocations per
# guarded instrumentation site, and this script gates the A/A build-time
# ratio at 2% (soft warning by default; BENCH_STRICT=1 makes it fail, for
# quiet hosts). The PR3/PR4 fast-path numbers are carried forward so one
# file still summarizes the repo's performance story.
#
# Usage: scripts/bench.sh [benchtime]   (default 3x; builds are seconds each)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
OUT=BENCH_PR5.json
COUNT="${BENCH_COUNT:-3}"

# One process, interleaved -count repetitions of both paths; the awk below
# keeps the minimum per benchmark (least-interference estimate).
echo "== go test -bench (benchtime=$BENCHTIME, count=$COUNT, keeping min) =="
go test -run '^$' \
	-bench '^(BenchmarkBuildDataset|BenchmarkBuildDatasetObserved)$' \
	-benchtime="$BENCHTIME" -count="$COUNT" . |
	tee /tmp/bench_obs.txt

# A/A pass for the no-op gate: the same disabled-path benchmark again, so
# the ratio folds host noise, not code drift, into the tolerance.
go test -run '^$' -bench '^BenchmarkBuildDataset$' \
	-benchtime="$BENCHTIME" -count="$COUNT" . |
	sed 's,^BenchmarkBuildDataset/,BenchmarkBuildDatasetAA/,' |
	tee /tmp/bench_obs_aa.txt

# Carry PR3/PR4 summary figures forward verbatim; null when missing.
carry() {
	sed -n "s/.*\"$2\": \([0-9.]*\).*/\1/p" "$1" 2>/dev/null | head -1
}

awk -v cpus="$(nproc)" -v maxprocs="${GOMAXPROCS:-$(nproc)}" \
	-v strict="${BENCH_STRICT:-0}" \
	-v p3place="$(carry BENCH_PR4.json place_speedup)" \
	-v p3route="$(carry BENCH_PR4.json route_speedup)" \
	-v p3cache="$(carry BENCH_PR4.json warm_cache_speedup)" \
	-v p4gbrt="$(carry BENCH_PR4.json gbrt_fit_speedup)" \
	-v p4grid="$(carry BENCH_PR4.json gbrt_grid_search_speedup)" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		if (!(name in ns) || $3 + 0 < ns[name]) {
			if (!(name in ns))
				order[n++] = name
			ns[name] = $3 + 0
		}
	}
	END {
		printf "{\n"
		printf "  \"host\": {\"cpus\": %d, \"gomaxprocs\": %s},\n", cpus, maxprocs

		printf "  \"carried_forward\": {"
		printf "\"place_speedup\": %s, ", (p3place != "" ? p3place : "null")
		printf "\"route_speedup\": %s, ", (p3route != "" ? p3route : "null")
		printf "\"warm_cache_speedup\": %s, ", (p3cache != "" ? p3cache : "null")
		printf "\"gbrt_fit_speedup\": %s, ", (p4gbrt != "" ? p4gbrt : "null")
		printf "\"gbrt_grid_search_speedup\": %s},\n", (p4grid != "" ? p4grid : "null")

		printf "  \"benchmarks\": {\n"
		for (i = 0; i < n; i++) {
			name = order[i]
			printf "    \"%s\": {\"ns_per_op\": %s}%s\n",
				name, ns[name], (i < n-1 ? "," : "")
		}
		printf "  },\n"

		base = ns["BenchmarkBuildDataset/workers=2"]
		aa   = ns["BenchmarkBuildDatasetAA/workers=2"]
		obsd = ns["BenchmarkBuildDatasetObserved"]

		noop = (base > 0 && aa > 0) ? aa / base : 0
		if (noop > 0)
			printf "  \"noop_overhead_check\": %.4f,\n", noop
		else
			printf "  \"noop_overhead_check\": null,\n"
		if (base > 0 && obsd > 0)
			printf "  \"enabled_overhead\": %.4f,\n", obsd / base
		else
			printf "  \"enabled_overhead\": null,\n"

		printf "  \"noop_within_2pct\": %s\n", (noop > 0 && noop <= 1.02) ? "true" : "false"
		printf "}\n"

		if (noop > 1.02) {
			printf "WARNING: disabled-observer A/A ratio %.4f exceeds 1.02\n", noop > "/dev/stderr"
			if (strict != 0)
				exit 1
		}
	}
' /tmp/bench_obs.txt /tmp/bench_obs_aa.txt > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
