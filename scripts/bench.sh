#!/usr/bin/env sh
# Benchmark harness for the parallel execution layer: runs the dataset-build
# and grid-search benchmarks at each worker count and records the timings in
# BENCH_PR2.json. Speedup from Workers>1 can only materialize on multi-core
# hosts, so the host's CPU count and GOMAXPROCS are recorded alongside the
# ns/op figures to keep the numbers interpretable.
#
# Usage: scripts/bench.sh [benchtime]   (default 1x; try 3x on fast hosts)
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1x}"
OUT=BENCH_PR2.json

echo "== go test -bench (benchtime=$BENCHTIME) =="
go test -run '^$' -bench 'BenchmarkBuildDataset' -benchtime="$BENCHTIME" . |
	tee /tmp/bench_build.txt
go test -run '^$' -bench 'BenchmarkGridSearchCV' -benchtime="$BENCHTIME" ./internal/ml/ |
	tee /tmp/bench_grid.txt
go test -run '^$' -bench 'BenchmarkVector' -benchmem -benchtime=1000x ./internal/features/ |
	tee /tmp/bench_vec.txt

awk -v cpus="$(nproc)" -v maxprocs="${GOMAXPROCS:-$(nproc)}" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		ns[name] = $3
		order[n++] = name
	}
	END {
		printf "{\n"
		printf "  \"host\": {\"cpus\": %d, \"gomaxprocs\": %s},\n", cpus, maxprocs
		printf "  \"benchmarks\": {\n"
		for (i = 0; i < n; i++) {
			name = order[i]
			printf "    \"%s\": {\"ns_per_op\": %s}%s\n", name, ns[name], (i < n-1 ? "," : "")
		}
		printf "  },\n"
		seq = ns["BenchmarkBuildDataset/workers=1"]
		par = ns["BenchmarkBuildDataset/workers=4"]
		if (seq > 0 && par > 0)
			printf "  \"build_speedup_workers4\": %.3f\n", seq / par
		else
			printf "  \"build_speedup_workers4\": null\n"
		printf "}\n"
	}
' /tmp/bench_build.txt /tmp/bench_grid.txt /tmp/bench_vec.txt > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
