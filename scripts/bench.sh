#!/usr/bin/env sh
# Benchmark harness for the multi-core serving scale-out: measures the
# /predict throughput-vs-cores curve behind BENCH_PR9.json.
#
# For each core count c in 1, 2, 4 (filtered to the host's CPUs), the
# server runs with GOMAXPROCS=c and -shards c — one batcher lane per
# core — under a closed-loop congload run; at the highest core count a
# single-shard server is measured too, so the sharded-vs-single ratio
# isolates what the shards buy at equal GOMAXPROCS. One open-loop point
# (-rate) records tail latency at a fixed offered load. Before any
# timing, the two configurations are proven byte-identical with congload
# -probe: a scale-out that changed the predictions is a failed run.
#
#   serve_preds_per_sec_Nc    closed-loop preds/s at GOMAXPROCS=N with N
#                             shards (the scaling curve).
#   sharded_vs_single_shard   preds/s(N shards) / preds/s(1 shard), both
#                             at the max core count — the tentpole claim,
#                             only made when the host has >= 4 CPUs. On
#                             fewer CPUs the lanes time-slice one core and
#                             the ratio measures scheduling fairness, not
#                             scaling, so the claim is refused (the
#                             PR3/PR8 precedent), never faked.
#
# The PR3-PR8 figures are carried forward from BENCH_PR8.json so one file
# still summarizes the repo's performance story.
#
# Usage: scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_PR9.json
CPUS="$(nproc)"
TMP="$(mktemp -d)"
SRV_PID=""
trap '[ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2> /dev/null; rm -rf "$TMP"' EXIT

go build -o "$TMP/congserve" ./cmd/congserve
go build -o "$TMP/congload" ./cmd/congload

echo "== training quick artifact =="
"$TMP/congserve" -train-quick -model "$TMP/model.json" -kind gbrt > /dev/null

# start_server GOMAXPROCS SHARDS: launches congserve in the background
# (output to a log so it never holds this script's pipes), waits for the
# bound address (written atomically via temp+rename), and sets SRV_PID and
# ADDR. Runs in this shell, not a substitution, so SRV_PID survives for
# stop_server.
start_server() {
	rm -f "$TMP/addr.txt"
	GOMAXPROCS="$1" "$TMP/congserve" -model "$TMP/model.json" -addr 127.0.0.1:0 \
		-addr-file "$TMP/addr.txt" -log-level warn -shards "$2" \
		> "$TMP/server.log" 2>&1 &
	SRV_PID=$!
	i=0
	while [ ! -s "$TMP/addr.txt" ]; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && { echo "FAIL: congserve never bound" >&2; return 1; }
		sleep 0.1
	done
	ADDR="$(cat "$TMP/addr.txt")"
}

stop_server() {
	kill -TERM "$SRV_PID"
	wait "$SRV_PID" || { echo "FAIL: congserve did not drain cleanly" >&2; return 1; }
	SRV_PID=""
}

# Pull one numeric field out of a JSON report (first match).
carry() {
	sed -n "s/.*\"$2\": \(-\{0,1\}[0-9.]*\).*/\1/p" "$1" 2> /dev/null | head -1
}

echo "== prediction byte-identity (1 shard vs 4 shards) =="
start_server "$CPUS" 1
"$TMP/congload" -addr "$ADDR" -probe "$TMP/probe1.bin"
stop_server
start_server "$CPUS" 4
"$TMP/congload" -addr "$ADDR" -probe "$TMP/probe4.bin"
stop_server
cmp "$TMP/probe1.bin" "$TMP/probe4.bin" || {
	echo "FAIL: sharded predictions differ from single-shard"
	exit 1
}
echo "  byte-identical"

# Closed-loop measurement: enough workers to keep every lane fed, long
# enough to dominate warmup jitter.
LOAD_ARGS="-duration 3s -warmup 300ms -concurrency 8 -rows 32"

CMAX=1
CURVE_1C="null"; CURVE_2C="null"; CURVE_4C="null"
for c in 1 2 4; do
	if [ "$c" -gt "$CPUS" ]; then
		echo "== skipping ${c}-core point: host has $CPUS CPU(s) =="
		continue
	fi
	echo "== closed-loop sweep: GOMAXPROCS=$c, $c shard(s) =="
	start_server "$c" "$c"
	# shellcheck disable=SC2086
	"$TMP/congload" -addr "$ADDR" $LOAD_ARGS > "$TMP/sweep$c.json"
	stop_server
	pps="$(carry "$TMP/sweep$c.json" preds_per_sec)"
	echo "  preds/s: $pps"
	case "$c" in
	1) CURVE_1C="$pps" ;;
	2) CURVE_2C="$pps" ;;
	4) CURVE_4C="$pps" ;;
	esac
	CMAX="$c"
done

echo "== single-shard baseline at GOMAXPROCS=$CMAX =="
start_server "$CMAX" 1
# shellcheck disable=SC2086
"$TMP/congload" -addr "$ADDR" $LOAD_ARGS > "$TMP/single.json"
stop_server
SINGLE_PPS="$(carry "$TMP/single.json" preds_per_sec)"
echo "  preds/s: $SINGLE_PPS"

echo "== open-loop point: fixed offered rate, $CMAX shard(s) =="
start_server "$CMAX" "$CMAX"
"$TMP/congload" -addr "$ADDR" -rate 2000 -conns 8 -duration 3s \
	-warmup 300ms -rows 32 > "$TMP/open.json"
stop_server
OPEN_P99="$(carry "$TMP/open.json" p99_us)"
OPEN_DROPPED="$(carry "$TMP/open.json" dropped_ticks)"
echo "  p99: ${OPEN_P99}us, dropped ticks: $OPEN_DROPPED"

SHARDED_MAX="$CURVE_1C"
[ "$CMAX" = 2 ] && SHARDED_MAX="$CURVE_2C"
[ "$CMAX" = 4 ] && SHARDED_MAX="$CURVE_4C"

awk -v cpus="$CPUS" -v strict="${BENCH_STRICT:-0}" -v cmax="$CMAX" \
	-v c1="$CURVE_1C" -v c2="$CURVE_2C" -v c4="$CURVE_4C" \
	-v single="$SINGLE_PPS" -v sharded="$SHARDED_MAX" \
	-v openp99="$OPEN_P99" -v opendrop="$OPEN_DROPPED" \
	-v p3place="$(carry BENCH_PR8.json place_speedup)" \
	-v p3route="$(carry BENCH_PR8.json route_speedup)" \
	-v p3cache="$(carry BENCH_PR8.json warm_cache_speedup)" \
	-v p4gbrt="$(carry BENCH_PR8.json gbrt_fit_speedup)" \
	-v p4grid="$(carry BENCH_PR8.json gbrt_grid_search_speedup)" \
	-v p5noop="$(carry BENCH_PR8.json noop_overhead_check)" \
	-v p5obs="$(carry BENCH_PR8.json enabled_overhead)" \
	-v p6store="$(carry BENCH_PR8.json store_overhead)" \
	-v p6resume="$(carry BENCH_PR8.json resume_speedup)" \
	-v p7serve="$(carry BENCH_PR8.json serve_preds_per_sec_single_core)" \
	-v p7http="$(carry BENCH_PR8.json http_preds_per_sec_single_core)" \
	-v p7p99="$(carry BENCH_PR8.json serve_p99_us_bound)" \
	-v p8over="$(carry BENCH_PR8.json coordination_overhead_1w)" \
	-v p8w2="$(carry BENCH_PR8.json wall_ratio_2w)" \
	-v p8w4="$(carry BENCH_PR8.json wall_ratio_4w)" '
	function num(v) { return (v != "" ? v : "null") }
	BEGIN {
		refused = (cpus < 4) ? "true" : "false"

		printf "{\n"
		printf "  \"host\": {\"cpus\": %d},\n", cpus

		printf "  \"carried_forward\": {"
		printf "\"place_speedup\": %s, ", num(p3place)
		printf "\"route_speedup\": %s, ", num(p3route)
		printf "\"warm_cache_speedup\": %s, ", num(p3cache)
		printf "\"gbrt_fit_speedup\": %s, ", num(p4gbrt)
		printf "\"gbrt_grid_search_speedup\": %s, ", num(p4grid)
		printf "\"noop_overhead_check\": %s, ", num(p5noop)
		printf "\"enabled_overhead\": %s, ", num(p5obs)
		printf "\"store_overhead\": %s, ", num(p6store)
		printf "\"resume_speedup\": %s, ", num(p6resume)
		printf "\"serve_preds_per_sec_single_core\": %s, ", num(p7serve)
		printf "\"http_preds_per_sec_single_core\": %s, ", num(p7http)
		printf "\"serve_p99_us_bound\": %s, ", num(p7p99)
		printf "\"fleet_coordination_overhead_1w\": %s, ", num(p8over)
		printf "\"fleet_wall_ratio_2w\": %s, ", num(p8w2)
		printf "\"fleet_wall_ratio_4w\": %s},\n", num(p8w4)

		printf "  \"serving_scale_out\": {\n"
		printf "    \"predictions_byte_identical_across_shards\": true,\n"
		printf "    \"serve_preds_per_sec_1c\": %s,\n", num(c1)
		printf "    \"serve_preds_per_sec_2c\": %s,\n", num(c2)
		printf "    \"serve_preds_per_sec_4c\": %s,\n", num(c4)
		printf "    \"single_shard_preds_per_sec_at_%dc\": %s,\n", cmax, num(single)
		if (single != "" && sharded != "" && single + 0 > 0)
			printf "    \"sharded_vs_single_shard_at_%dc\": %.3f,\n", cmax, sharded / single
		else
			printf "    \"sharded_vs_single_shard_at_%dc\": null,\n", cmax
		printf "    \"open_loop\": {\"offered_rate\": 2000, \"p99_us\": %s, \"dropped_ticks\": %s}\n", \
			num(openp99), num(opendrop)
		printf "  },\n"

		# The tentpole claim needs the cores to back it: with fewer than 4
		# CPUs the lanes time-slice and the ratio measures scheduling
		# fairness, not multi-core scaling — record the curve, claim nothing
		# (the PR3/PR8 refusal precedent).
		printf "  \"scaling_claims_refused\": %s,\n", refused
		if (refused == "true") {
			printf "  \"refusal_reason\": \"host has %d CPU(s); the 4-core scaling claim needs >= 4 CPUs — measured points above are recorded, the claim is not made\",\n", cpus
			printf "  \"meets_sharded_2_5x_at_4_cores\": null\n"
		} else {
			ratio = (single + 0 > 0) ? c4 / single : 0
			ok = (ratio >= 2.5) ? "true" : "false"
			printf "  \"meets_sharded_2_5x_at_4_cores\": %s\n", ok
			if (ok != "true") {
				printf "WARNING: sharded/single ratio %.2fx below the 2.5x target\n", \
					ratio > "/dev/stderr"
				if (strict != 0) exit 1
			}
		}
		printf "}\n"
	}
' > "$OUT"

echo "wrote $OUT:"
cat "$OUT"
