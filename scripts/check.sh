#!/usr/bin/env sh
# Tier-1 verification: build, vet, test, and race-test the whole module.
# This is the gate every PR must keep green (see ROADMAP.md).
set -eu
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

# The parallel execution layer's reproduction contract: a concurrent build
# must be byte-identical to the sequential one, and the parallel hot paths
# must be clean under the race detector even while being timed.
echo "== parallel determinism (-race) =="
go test -race -count=1 -run 'TestBuildDatasetDeterministicAcrossWorkers' ./internal/core/

echo "== parallel bench smoke (-race) =="
go test -race -run '^$' -bench 'BenchmarkBuildDataset$' -benchtime=1x .

# The fast-path reproduction contract: the incremental placer and the
# O(1)-pattern router must be byte-identical to the frozen pre-optimization
# kernels kept under test, and the router's steady state must not allocate.
echo "== kernel equivalence =="
go test -count=1 -run 'TestPlaceEquivalentToReference|TestRouteEquivalentToReference|TestRouterReuseAcrossFlows|TestRouteAllSteadyStateAllocs' \
	./internal/place/ ./internal/route/

# The flow cache's reproduction contract: a second identical dataset build
# against a warm cache must report hits while producing byte-identical
# output, including with the cache shared across parallel workers.
echo "== flow-cache hit-rate smoke (-race) =="
go test -race -count=1 -run 'TestBuildDatasetFlowCache' ./internal/core/

# The ML fast-path reproduction contract: the flat-matrix trainers (GBRT
# with shared binning, ANN, lasso), the pooled metrics/scaler and the CV
# grid search must be byte-identical to the frozen pre-optimization
# implementations kept under test — across seeds, under the race detector.
echo "== ml equivalence (-race) =="
go test -race -count=1 -run 'Equivalence' \
	./internal/ml/ ./internal/ml/gbrt/ ./internal/ml/ann/ ./internal/ml/lasso/

# Steady-state serving must not allocate. Runs without -race on purpose:
# the race detector makes sync.Pool drop Puts at random, which makes
# allocation counts meaningless (the guards skip themselves there).
echo "== ml zero-alloc guards =="
go test -count=1 -run 'ZeroAlloc' ./internal/ml/

# The serving layer's allocation contract: the whole /predict hot path —
# admission, pooled decode (both wire formats), coalescing, prediction,
# response encoding — and the 429 shed path must be allocation-free once
# warm.
echo "== serve zero-alloc guards =="
go test -count=1 -run 'ZeroAlloc' ./internal/serve/

# The striped-metrics contract: a registry fed an operation sequence
# through striped counters/gauges/histograms must snapshot identically to
# a plain registry fed the same sequence, and the stripes must be clean
# and sum correctly under the race detector.
echo "== striped metrics equivalence (-race) =="
go test -count=1 -run 'TestStripedSnapshotEquivalence' ./internal/obs/
go test -race -count=1 -run 'TestStripedConcurrency' ./internal/obs/

# The multi-core serving contract, under the race detector: sharded
# responses byte-identical to single-shard, all-shards-saturated bursts
# shed fast with stripe-summed counters, and a reload mid-load never
# serves two model generations in one batch.
echo "== sharded serve invariants (-race) =="
go test -race -count=1 \
	-run 'TestShardedPredictionsMatchSingleShard|TestAllShardsSaturatedSheds|TestReloadSingleGenerationPerBatch|TestShardedGracefulDrain' \
	./internal/serve/

# The observability layer's contract, end to end: a quick observed run must
# write a loadable Chrome trace containing a span per flow stage and a
# metrics snapshot carrying the canonical flow series (obscheck validates
# both), observation must never change results (the *ObserverInert /
# *DoesNotChangeResult tests), the disabled fast path must not allocate,
# and the shared registry/tracer must be race-clean under the same worker
# pool the builder uses.
echo "== observability smoke (quick run + artifact validation) =="
go run ./cmd/hlscong -quick -workers 2 \
	-trace /tmp/obs_trace.json -metrics /tmp/obs_metrics.json table1 > /dev/null
go run ./cmd/obscheck -trace /tmp/obs_trace.json -metrics /tmp/obs_metrics.json

echo "== obs invariants (zero-alloc, golden trace, -race) =="
go test -count=1 -run 'TestDisabledSpanZeroAlloc|TestChromeTraceGolden' ./internal/obs/
go test -race -count=1 -run 'TestRegistryConcurrency|TestTracerConcurrency' ./internal/obs/
go test -race -count=1 -run 'ObserverInert|DoesNotChangeResult' ./internal/core/ ./internal/flow/

# The telemetry layer's derivation rules: counter-reset handling, empty
# and first-sample windows, ring wraparound, Prometheus text rendering,
# breach-capture rate limiting, and the span-batch codec + Import remap
# that trace stitching is built on.
echo "== recorder / prom / breach / stitching unit tests =="
go test -count=1 \
	-run 'TestRecorder|TestBucketQuantile|TestProm|TestBreach|TestTraceContext|TestSpanBatch|TestEncodeSpanBatch|TestDecodeSpanBatch|TestTracerImport|TestChromeTraceLanes' \
	./internal/obs/

# The persistence layer's reproduction contract, across a real process
# kill: a checkpointed build is SIGKILLed mid-sweep (right after its second
# store put — results persisted, no module block yet), then rerun against
# the same store directory. The rerun must complete, draw on the store
# (nonzero store.hit), produce an artifact byte-identical to a never-killed
# build, and leave a store with zero quarantined entries.
echo "== crash recovery (kill -9 mid-build, resume, byte-identical) =="
go build -o /tmp/storecheck ./cmd/storecheck
CRASH_TMP="$(mktemp -d)"
trap 'rm -rf "$CRASH_TMP" /tmp/storecheck' EXIT
/tmp/storecheck -dir "$CRASH_TMP/ref" -build -modules digit_recognition \
	-label-runs 2 -moves 3000 -out "$CRASH_TMP/ref.art" > /dev/null
set +e
/tmp/storecheck -dir "$CRASH_TMP/crash" -build -modules digit_recognition \
	-label-runs 2 -moves 3000 -crash-after-puts 2 > /dev/null 2>&1
crash_rc=$?
set -e
if [ "$crash_rc" -eq 0 ]; then
	echo "FAIL: crash run exited cleanly instead of dying mid-build"
	exit 1
fi
/tmp/storecheck -dir "$CRASH_TMP/crash" -build -modules digit_recognition \
	-label-runs 2 -moves 3000 -out "$CRASH_TMP/resumed.art" |
	tee "$CRASH_TMP/resume.txt"
cmp "$CRASH_TMP/ref.art" "$CRASH_TMP/resumed.art" || {
	echo "FAIL: resumed artifact differs from the never-killed build"
	exit 1
}
grep -q 'store: hit=[1-9]' "$CRASH_TMP/resume.txt" || {
	echo "FAIL: resume never hit the persistent store"
	exit 1
}
/tmp/storecheck -dir "$CRASH_TMP/crash" > /dev/null

# The store's decode path must also survive hostile bytes: a short bounded
# fuzz run on top of the checked-in seed corpus (which go test replays).
echo "== store decode fuzz smoke (5s) =="
go test -run '^$' -fuzz 'FuzzStoreDecode' -fuzztime 5s ./internal/store/ > /dev/null

# The serving codec faces raw network bytes; its hand-rolled JSON parser
# gets the same bounded-fuzz treatment.
echo "== serve codec fuzz smoke (5s) =="
go test -run '^$' -fuzz 'FuzzDecodeJSONRows' -fuzztime 5s ./internal/serve/ > /dev/null

# The serving daemon's contract, end to end over real HTTP: train a quick
# artifact, serve it multi-shard, predict against it, prove the sharded
# server's responses byte-identical to a single-shard server's (congload
# -probe), hot-reload it (a valid swap bumps the generation; a corrupt
# artifact is rejected with the old model still serving), then drain
# gracefully on SIGTERM with load in flight.
echo "== congserve smoke (2 shards: serve, probe identity, hot-reload, drain) =="
SERVE_TMP="$(mktemp -d)"
SERVE_PID=""
trap 'rm -rf "$CRASH_TMP" "$SERVE_TMP" /tmp/storecheck; [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2> /dev/null || true' EXIT
go build -o "$SERVE_TMP/congserve" ./cmd/congserve
go build -o "$SERVE_TMP/congload" ./cmd/congload
go build -o "$SERVE_TMP/congtop" ./cmd/congtop
go build -o "$SERVE_TMP/obscheck" ./cmd/obscheck
"$SERVE_TMP/congserve" -train-quick -model "$SERVE_TMP/model.json" -kind gbrt > /dev/null
# The recorder samples every 100ms and the breach threshold (p99 > 1µs) is
# below any real request latency, so the first busy window triggers a
# capture; the 10m rate limit then pins the capture count at exactly one.
"$SERVE_TMP/congserve" -model "$SERVE_TMP/model.json" -addr 127.0.0.1:0 \
	-addr-file "$SERVE_TMP/addr.txt" -log-level warn -shards 2 \
	-history-interval 100ms -breach-dir "$SERVE_TMP/breach" \
	-breach-p99-us 1 -breach-min-interval 10m &
SERVE_PID=$!
i=0
while [ ! -s "$SERVE_TMP/addr.txt" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && { echo "FAIL: congserve never wrote its address"; exit 1; }
	sleep 0.1
done
ADDR="$(cat "$SERVE_TMP/addr.txt")"
curl -sf "http://$ADDR/healthz" | grep -q '"status": "ok"' || {
	echo "FAIL: /healthz not ok"
	exit 1
}
"$SERVE_TMP/congload" -addr "$ADDR" -n 200 -concurrency 2 -rows 32 > "$SERVE_TMP/load.json"
grep -q '"errors": 0' "$SERVE_TMP/load.json" || {
	echo "FAIL: /predict load run had errors"
	exit 1
}
grep -q '"server"' "$SERVE_TMP/load.json" || {
	echo "FAIL: congload report carries no server-side metrics delta"
	exit 1
}
# Telemetry surface over the same live server: the Prometheus exposition
# must pass the strict checker, the history ring must have samples,
# congtop must render a frame from it, and the sub-microsecond breach
# threshold must have produced exactly one capture — the rate limit turns
# a sustained breach into one directory, not one per sample.
sleep 0.3
curl -sf "http://$ADDR/debug/metrics/prom" > "$SERVE_TMP/metrics.prom"
"$SERVE_TMP/obscheck" -prom "$SERVE_TMP/metrics.prom"
curl -sf "http://$ADDR/debug/metrics/history" | grep -q '"seq"' || {
	echo "FAIL: /debug/metrics/history has no samples"
	exit 1
}
"$SERVE_TMP/congtop" -addr "$ADDR" -once > "$SERVE_TMP/congtop.txt"
grep -q 'sample #' "$SERVE_TMP/congtop.txt" || {
	echo "FAIL: congtop -once did not render a recorder sample"
	cat "$SERVE_TMP/congtop.txt"
	exit 1
}
captures="$(ls -d "$SERVE_TMP"/breach/breach-* 2> /dev/null | wc -l)"
[ "$captures" -eq 1 ] || {
	echo "FAIL: $captures breach captures, want exactly 1 (rate-limited)"
	exit 1
}
for f in reason.json history.json heap.pprof; do
	# shellcheck disable=SC2144
	[ -s "$SERVE_TMP"/breach/breach-*/"$f" ] || {
		echo "FAIL: breach capture is missing $f"
		exit 1
	}
done
# Byte-identity across shard counts: a 1-shard server over the same
# artifact must answer the probe with the exact bytes the 2-shard one did.
"$SERVE_TMP/congserve" -model "$SERVE_TMP/model.json" -addr 127.0.0.1:0 \
	-addr-file "$SERVE_TMP/addr1.txt" -log-level warn -shards 1 &
SERVE1_PID=$!
i=0
while [ ! -s "$SERVE_TMP/addr1.txt" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && { echo "FAIL: 1-shard congserve never wrote its address"; exit 1; }
	sleep 0.1
done
"$SERVE_TMP/congload" -addr "$ADDR" -probe "$SERVE_TMP/probe2.bin"
"$SERVE_TMP/congload" -addr "$(cat "$SERVE_TMP/addr1.txt")" -probe "$SERVE_TMP/probe1.bin"
kill -TERM "$SERVE1_PID" && wait "$SERVE1_PID" || {
	echo "FAIL: 1-shard congserve did not drain cleanly"
	exit 1
}
cmp "$SERVE_TMP/probe1.bin" "$SERVE_TMP/probe2.bin" || {
	echo "FAIL: sharded predictions differ from single-shard"
	exit 1
}
curl -sf -X POST "http://$ADDR/reload" | grep -q '"generation": 2' || {
	echo "FAIL: valid reload did not bump the generation"
	exit 1
}
echo junk > "$SERVE_TMP/model.json"
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/reload")"
[ "$code" = 422 ] || {
	echo "FAIL: corrupt artifact reload answered $code, want 422"
	exit 1
}
"$SERVE_TMP/congload" -addr "$ADDR" -n 50 -concurrency 1 -rows 8 > /dev/null || {
	echo "FAIL: serving stopped after a rejected reload"
	exit 1
}
"$SERVE_TMP/congload" -addr "$ADDR" -duration 2s -concurrency 2 -rows 32 \
	> "$SERVE_TMP/drain.json" 2> /dev/null &
LOAD_PID=$!
sleep 0.4
kill -TERM "$SERVE_PID"
serve_rc=0
wait "$SERVE_PID" || serve_rc=$?
SERVE_PID=""
[ "$serve_rc" -eq 0 ] || {
	echo "FAIL: congserve exited $serve_rc on SIGTERM, want graceful 0"
	exit 1
}
wait "$LOAD_PID" || true
grep -q '"preds": [1-9]' "$SERVE_TMP/drain.json" || {
	echo "FAIL: no request completed during the drain window"
	exit 1
}

# The fleet's reproduction contract, across real processes and a real
# worker death: a coordinator shards the build over two worker processes
# sharing one artifact store, one worker is SIGKILLed mid-cell, the lease
# expires, the survivor reruns the orphaned cell, and the assembled
# artifact is byte-identical to a sequential single-process build.
echo "== fleet build (2 workers, one SIGKILLed, byte-identical) =="
FLEET_TMP="$(mktemp -d)"
FLEET_W1=""
FLEET_W2=""
FLEET_COORD=""
trap 'rm -rf "$CRASH_TMP" "$SERVE_TMP" "$FLEET_TMP" /tmp/storecheck; [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2> /dev/null; for p in "$FLEET_COORD" "$FLEET_W1" "$FLEET_W2"; do [ -n "$p" ] && kill -9 "$p" 2> /dev/null; done; true' EXIT
go build -o "$FLEET_TMP/hlscong" ./cmd/hlscong
# The move budget makes each cell take seconds, so the SIGKILL at 1.5s
# lands mid-cell with the doomed worker's lease still outstanding.
FLEET_ARGS="-modules face_detection -label-runs 2 -moves 20000000"
# shellcheck disable=SC2086
"$FLEET_TMP/hlscong" -workers 1 $FLEET_ARGS -out "$FLEET_TMP/ref.art" build > /dev/null
# shellcheck disable=SC2086
"$FLEET_TMP/hlscong" -serve-builds 127.0.0.1:0 -fleet-addr-file "$FLEET_TMP/addr.txt" \
	-fleet-lease 2s $FLEET_ARGS -out "$FLEET_TMP/fleet.art" build \
	> /dev/null 2> "$FLEET_TMP/coord.log" &
FLEET_COORD=$!
i=0
while [ ! -s "$FLEET_TMP/addr.txt" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && { echo "FAIL: fleet coordinator never wrote its address"; exit 1; }
	sleep 0.1
done
FLEET_ADDR="$(cat "$FLEET_TMP/addr.txt")"
"$FLEET_TMP/hlscong" -join "$FLEET_ADDR" -fleet-name doomed \
	-store-dir "$FLEET_TMP/store" > /dev/null 2>&1 &
FLEET_W1=$!
"$FLEET_TMP/hlscong" -join "$FLEET_ADDR" -fleet-name survivor \
	-store-dir "$FLEET_TMP/store" > /dev/null 2>&1 &
FLEET_W2=$!
sleep 1.5
kill -9 "$FLEET_W1" 2> /dev/null || true
FLEET_W1=""
coord_rc=0
wait "$FLEET_COORD" || coord_rc=$?
FLEET_COORD=""
wait "$FLEET_W2" 2> /dev/null || true
FLEET_W2=""
[ "$coord_rc" -eq 0 ] || {
	echo "FAIL: fleet coordinator exited $coord_rc"
	cat "$FLEET_TMP/coord.log"
	exit 1
}
grep -Eq '[1-9][0-9]* leases expired' "$FLEET_TMP/coord.log" || {
	echo "FAIL: no lease expired — the SIGKILLed worker's cell was never orphaned"
	cat "$FLEET_TMP/coord.log"
	exit 1
}
cmp "$FLEET_TMP/ref.art" "$FLEET_TMP/fleet.art" || {
	echo "FAIL: fleet artifact differs from the sequential build"
	exit 1
}

# The distributed-tracing contract, across real processes: a traced
# 2-worker fleet build must produce ONE stitched Chrome trace on the
# coordinator — a single fleet.build root on the local lane, a named lane
# per worker (trace context propagated over the lease header, span
# batches shipped back on completions), every worker span inside the
# build interval, and one flow span per cell. obscheck -stitched asserts
# all of it.
echo "== stitched fleet trace (2 workers, one trace, lanes validated) =="
STITCH_COORD=""
STITCH_W1=""
STITCH_W2=""
trap 'rm -rf "$CRASH_TMP" "$SERVE_TMP" "$FLEET_TMP" /tmp/storecheck; [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2> /dev/null; for p in "$FLEET_COORD" "$FLEET_W1" "$FLEET_W2" "$STITCH_COORD" "$STITCH_W1" "$STITCH_W2"; do [ -n "$p" ] && kill -9 "$p" 2> /dev/null; done; true' EXIT
rm -f "$FLEET_TMP/addr.txt"
"$FLEET_TMP/hlscong" -serve-builds 127.0.0.1:0 -fleet-addr-file "$FLEET_TMP/addr.txt" \
	-modules digit_recognition -label-runs 4 -moves 3000 \
	-trace "$FLEET_TMP/fleet_trace.json" -metrics "$FLEET_TMP/fleet_metrics.json" \
	build > /dev/null 2> "$FLEET_TMP/stitch.log" &
STITCH_COORD=$!
i=0
while [ ! -s "$FLEET_TMP/addr.txt" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && { echo "FAIL: stitched coordinator never wrote its address"; exit 1; }
	sleep 0.1
done
STITCH_ADDR="$(cat "$FLEET_TMP/addr.txt")"
"$FLEET_TMP/hlscong" -join "$STITCH_ADDR" -fleet-name wA > /dev/null 2>&1 &
STITCH_W1=$!
"$FLEET_TMP/hlscong" -join "$STITCH_ADDR" -fleet-name wB > /dev/null 2>&1 &
STITCH_W2=$!
stitch_rc=0
wait "$STITCH_COORD" || stitch_rc=$?
STITCH_COORD=""
wait "$STITCH_W1" 2> /dev/null || true
STITCH_W1=""
wait "$STITCH_W2" 2> /dev/null || true
STITCH_W2=""
[ "$stitch_rc" -eq 0 ] || {
	echo "FAIL: stitched-trace coordinator exited $stitch_rc"
	cat "$FLEET_TMP/stitch.log"
	exit 1
}
"$SERVE_TMP/obscheck" -trace "$FLEET_TMP/fleet_trace.json" -stitched -lanes 2

echo "tier-1 checks passed"
