#!/usr/bin/env sh
# Tier-1 verification: build, vet, test, and race-test the whole module.
# This is the gate every PR must keep green (see ROADMAP.md).
set -eu
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

# The parallel execution layer's reproduction contract: a concurrent build
# must be byte-identical to the sequential one, and the parallel hot paths
# must be clean under the race detector even while being timed.
echo "== parallel determinism (-race) =="
go test -race -count=1 -run 'TestBuildDatasetDeterministicAcrossWorkers' ./internal/core/

echo "== parallel bench smoke (-race) =="
go test -race -run '^$' -bench 'BenchmarkBuildDataset' -benchtime=1x .

echo "tier-1 checks passed"
