#!/usr/bin/env sh
# Tier-1 verification: build, vet, test, and race-test the whole module.
# This is the gate every PR must keep green (see ROADMAP.md).
set -eu
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "tier-1 checks passed"
