package congest

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestObserverFacade drives the observability surface the way the README's
// snippet does: attach an observer, run a flow, export both artifacts.
func TestObserverFacade(t *testing.T) {
	o := NewObserver()
	cfg := WithObserver(DefaultFlowConfig(), o)
	cfg.Place.Moves = 3000
	m := FaceDetection(WithoutDirectives())
	res, err := RunFlow(m, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Satellite guarantee: the Result's stage breakdown is populated even
	// for callers that never look at the tracer.
	if res.Timings.Place <= 0 || res.Timings.Total <= 0 {
		t.Errorf("Timings not populated: %+v", res.Timings)
	}

	var trace bytes.Buffer
	if err := o.Trace.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &parsed); err != nil {
		t.Fatalf("facade trace invalid: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"flow", "place", "route"} {
		if !names[want] {
			t.Errorf("trace missing %q span", want)
		}
	}

	var metrics bytes.Buffer
	if err := o.WriteMetricsJSON(&metrics); err != nil {
		t.Fatal(err)
	}
	var snap ObsSnapshot
	if err := json.Unmarshal(metrics.Bytes(), &snap); err != nil {
		t.Fatalf("facade metrics invalid: %v", err)
	}
	if v, ok := snap.Counter("flow.runs"); !ok || v != 1 {
		t.Errorf("flow.runs=%d (present=%v), want 1", v, ok)
	}
}

// TestWithObserverNilDetaches: attaching then detaching leaves a plain
// config.
func TestWithObserverNilDetaches(t *testing.T) {
	cfg := WithObserver(DefaultFlowConfig(), NewObserver())
	cfg = WithObserver(cfg, nil)
	if cfg.Obs != nil {
		t.Error("nil observer did not detach")
	}
}

func TestNewObsLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewObsLogger(&buf, "warn")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("visible", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "visible") {
		t.Errorf("level filtering wrong:\n%s", out)
	}
	if _, err := NewObsLogger(&buf, "shouting"); err == nil {
		t.Error("bad level accepted")
	}
}
